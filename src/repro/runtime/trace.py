"""Event traces of a run.

Every atomic step, crash and decision is (optionally) recorded as an event.
Traces feed the linearizability checker (`repro.analysis.linearizability`)
and make failing property-based tests replayable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional

from .ops import Invocation


class EventKind(enum.Enum):
    """What kind of thing happened at one trace position."""

    STEP = "step"          # an atomic operation executed
    SPIN = "spin"          # a spin re-check whose predicate was false
    CRASH = "crash"
    DECIDE = "decide"
    BLOCKED = "blocked"    # deadlock detector retired the process


@dataclass(frozen=True)
class Event:
    """One event of a run, in global step order."""

    index: int
    kind: EventKind
    pid: int
    invocation: Optional[Invocation] = None
    result: Any = None

    def __repr__(self) -> str:
        if self.kind is EventKind.STEP:
            return (f"[{self.index}] p{self.pid} {self.invocation!r} "
                    f"-> {self.result!r}")
        if self.kind is EventKind.SPIN:
            return f"[{self.index}] p{self.pid} spin {self.invocation!r}"
        if self.kind is EventKind.DECIDE:
            return f"[{self.index}] p{self.pid} decides {self.result!r}"
        return f"[{self.index}] p{self.pid} {self.kind.value}"


class Trace:
    """Append-only list of events with simple query helpers."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events: List[Event] = []

    def record(self, kind: EventKind, pid: int,
               invocation: Optional[Invocation] = None,
               result: Any = None) -> None:
        if not self.enabled:
            return
        self.events.append(
            Event(len(self.events), kind, pid, invocation, result))

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def steps(self) -> List[Event]:
        return [e for e in self.events if e.kind is EventKind.STEP]

    def by_pid(self, pid: int) -> List[Event]:
        return [e for e in self.events if e.pid == pid]

    def on_object(self, obj: str) -> List[Event]:
        return [e for e in self.events
                if e.invocation is not None and e.invocation.obj == obj]

    def crashes(self) -> List[Event]:
        return [e for e in self.events if e.kind is EventKind.CRASH]

    def decisions(self) -> List[Event]:
        return [e for e in self.events if e.kind is EventKind.DECIDE]

    def render(self, limit: Optional[int] = None) -> str:
        """Multi-line rendering, optionally truncated, for debugging."""
        shown = self.events if limit is None else self.events[:limit]
        lines = [repr(e) for e in shown]
        if limit is not None and len(self.events) > limit:
            lines.append(f"... ({len(self.events) - limit} more events)")
        return "\n".join(lines)
