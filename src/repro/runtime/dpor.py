"""Dynamic partial-order reduction for exhaustive schedule exploration.

The naive explorer (`repro.runtime.explore`) enumerates *every*
interleaving, which is O(branching^depth) and caps exhaustive checking at
2-3 processes.  Most of those interleavings are redundant: two steps that
touch disjoint shared locations commute, so any pair of schedules that
differ only in the order of independent adjacent steps reach the same
state.  This module explores at least one representative per
Mazurkiewicz trace (equivalence class of schedules under commuting
independent steps) instead of every schedule, using the two standard
stateless model-checking devices:

* **Persistent sets via dynamic backtracking** (Flanagan & Godefroid
  2005): at each state, start with a single enabled process; whenever a
  later step is found to *race* with an earlier one (conflicting
  footprints, not already ordered by happens-before), add the racer to
  the backtrack set of the state the earlier step executed from.
  Happens-before is tracked with per-process vector clocks over the
  executed steps (program order + footprint-conflict order).  We add a
  backtrack point for *every* racing earlier step, a superset of the
  classic last-racer rule -- slightly more exploration, comfortably
  sound.
* **Sleep sets** (Godefroid 1996): a process whose next step was already
  explored from this state, and which is independent of everything
  executed since, need not be re-scheduled -- subtrees whose every
  candidate sleeps are pruned outright.

Independence is decided by the read/write *footprints* that every shared
object reports for its operations (:class:`repro.runtime.ops.Footprint`,
:meth:`repro.memory.base.SharedObject.footprint`): two steps of different
processes are independent iff neither writes a location the other reads
or writes.  Crash events touch no shared state and commute with
everything.  Footprints may over-approximate (conservative) but must
never omit an accessed location.

When the property ``check()`` fails on some schedule, the failing
schedule is **shrunk** by delta debugging (:func:`shrink_schedule`): the
scheduler repeatedly removes chunks of the schedule prefix, completes
each candidate deterministically (lowest pid first), and keeps any
strictly shorter prefix that still fails, down to a locally-minimal
(1-minimal) prefix.  The result is a replayable
:class:`Counterexample` artifact raised inside a
:class:`CounterexampleFound` error.

Soundness of the reduction is pinned by ``tests/runtime/test_dpor.py``:
DPOR and the naive enumerator must visit the same set of terminal states
(statuses + decisions) on seeded micro-programs, including under crash
plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Generator, List, Optional,
                    Sequence, Set, Tuple)

from .adversary import Adversary
from .crash import CrashPlan
from .explore import (ExplorationStats, ShardViolation, _max_runs_interrupt,
                      _past_deadline, _timeout_interrupt)
from .ops import EMPTY_FOOTPRINT, Footprint, Invocation, SpinOp, conflicts
from .process import ProcessHandle, ProcessStatus
from .run import RunResult
from .scheduler import Scheduler
from .trace import Trace

#: Type of the ``build`` callback: returns a fresh ``(programs, store)``.
Builder = Callable[[], Tuple[Dict[int, Generator], Any]]


class _InertAdversary(Adversary):
    """The DPOR engine drives the scheduler directly; never consulted."""

    def pick(self, enabled, step):  # pragma: no cover - defensive
        raise AssertionError("DPOR scheduler must not consult an adversary")


class _System:
    """A live system replayed step by step under explorer control.

    Wraps a fresh ``build()`` result plus a scheduler, exposing exactly
    what the DPOR engine needs: the filtered candidate set at the current
    state, the pending footprint of each live process, and one-step
    execution returning the footprint actually exercised.
    """

    def __init__(self, build: Builder,
                 crash_plan_factory: Optional[Callable[[], CrashPlan]]
                 ) -> None:
        programs, store = build()
        self.store = store
        self.handles = {pid: ProcessHandle(pid, gen)
                        for pid, gen in programs.items()}
        self.scheduler = Scheduler(
            handles=self.handles,
            store=store,
            adversary=_InertAdversary(),
            crash_plan=(crash_plan_factory() if crash_plan_factory
                        else None),
            trace=Trace(enabled=False),
            max_steps=10 ** 9,
        )
        self.deadlocked = False

    # ------------------------------------------------------------------
    def _stutters(self, handle: ProcessHandle) -> bool:
        """Exact stutter pruning, identical to the naive explorer: a
        process whose single-condition spin already failed since the last
        state-changing step would deterministically fail again."""
        return (isinstance(handle.pending, SpinOp)
                and handle.pending.period == 1
                and handle.spin_failures > 0)

    def candidates(self) -> List[int]:
        """Schedulable processes at the current state (sorted).

        Pre-advances never-started generators to their first yield so
        every live process has a known pending operation (processes that
        finish without yielding decide immediately -- an invisible,
        footprint-free event).  If every enabled process is a provably
        stuck spinner, they are retired as BLOCKED and the state is
        terminal (permanent deadlock, exactly detected).
        """
        for handle in self.handles.values():
            if handle.alive and handle.pending is None:
                handle.advance()
        enabled = sorted(pid for pid, h in self.handles.items() if h.alive)
        cands = [pid for pid in enabled
                 if not self._stutters(self.handles[pid])]
        if enabled and not cands:
            self.deadlocked = True
            for pid in enabled:
                self.handles[pid].mark_blocked()
            return []
        return cands

    def pending_footprint(self, pid: int) -> Optional[Footprint]:
        """Footprint of ``pid``'s next operation (None = unknown)."""
        op = self.handles[pid].pending
        if op is None:
            return None
        inv = op.invocation if isinstance(op, SpinOp) else op
        if not isinstance(inv, Invocation):
            return None
        return self.store.footprint(pid, inv)

    def alive_footprints(self) -> Dict[int, Optional[Footprint]]:
        return {pid: self.pending_footprint(pid)
                for pid, h in self.handles.items() if h.alive}

    def execute(self, pid: int) -> Optional[Footprint]:
        """Execute one step of ``pid``; returns the footprint exercised.

        A step that turns out to be a crash event touches no shared
        state and reports :data:`~repro.runtime.ops.EMPTY_FOOTPRINT`.
        """
        handle = self.handles[pid]
        if handle.pending is None:
            handle.advance()
        if handle.pending is None:
            return EMPTY_FOOTPRINT  # decided without yielding
        fp = self.pending_footprint(pid)
        self.scheduler._step(handle)
        if handle.status is ProcessStatus.CRASHED:
            return EMPTY_FOOTPRINT
        return fp

    def result(self) -> RunResult:
        decisions = {pid: h.decision for pid, h in self.handles.items()
                     if h.decided}
        return RunResult(
            statuses={pid: h.status for pid, h in self.handles.items()},
            decisions=decisions,
            steps=self.scheduler.steps,
            deadlocked=self.deadlocked,
            out_of_steps=False,
            trace=None,
            store=self.store,
        )


# ---------------------------------------------------------------------------
# Counterexamples and shrinking.
# ---------------------------------------------------------------------------

@dataclass
class Counterexample:
    """A replayable failing schedule, shrunk to a locally-minimal prefix.

    ``prefix`` is the minimal scheduling decisions that trigger the
    failure; ``tail`` is the deterministic completion (lowest enabled pid
    first) appended to reach a terminal state.  ``schedule`` (prefix +
    tail) replayed against a fresh ``build()`` under the same crash plan
    reproduces the violation -- :meth:`replay` does exactly that.
    """

    prefix: List[int]
    tail: List[int]
    original_schedule: List[int]
    error: BaseException
    result: RunResult
    build: Builder
    check: Callable[[RunResult], None]
    crash_plan_factory: Optional[Callable[[], CrashPlan]] = None
    max_steps: int = 1_000_000
    #: Replays ddmin spent shrinking (0 when shrinking was skipped).
    ddmin_attempts: int = 0

    @property
    def schedule(self) -> List[int]:
        """The full concrete failing schedule (prefix + completion)."""
        return self.prefix + self.tail

    def replay(self) -> RunResult:
        """Re-execute the counterexample schedule from a fresh build."""
        return replay_schedule(self.build, self.schedule,
                               crash_plan_factory=self.crash_plan_factory,
                               max_steps=self.max_steps)

    def reproduces(self) -> bool:
        """Does the schedule still make ``check`` fail on a fresh run?"""
        try:
            self.check(self.replay())
        except Exception:
            return True
        return False

    def describe(self) -> str:
        lines = [
            f"counterexample ({len(self.prefix)}-step prefix, shrunk "
            f"from a {len(self.original_schedule)}-step schedule):",
            f"  prefix   : {self.prefix}",
            f"  completion (lowest pid first): {self.tail}",
            f"  violation: {type(self.error).__name__}: {self.error}",
            f"  outcome  : {self.result.summary()}",
        ]
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.describe()


class CounterexampleFound(AssertionError):
    """Raised by the DPOR explorer when ``check()`` fails on a schedule.

    Carries the shrunk, replayable :attr:`counterexample` plus the
    exploration :attr:`stats` accumulated up to the failure.  Subclasses
    ``AssertionError`` so existing ``pytest.raises(AssertionError)``
    expectations keep working.
    """

    def __init__(self, counterexample: Counterexample,
                 stats: Optional[ExplorationStats] = None) -> None:
        self.counterexample = counterexample
        self.stats = stats
        super().__init__(counterexample.describe())


def _drive(build: Builder,
           candidate: List[int],
           crash_plan_factory: Optional[Callable[[], CrashPlan]],
           max_steps: int):
    """Run ``candidate`` as a scheduling hint, then complete it.

    Entries naming a non-schedulable process are skipped (that is what
    lets delta debugging remove chunks without invalidating the rest);
    after the hint is exhausted the run is completed deterministically,
    lowest enabled pid first.  Returns ``(prefix_run, tail, result)``
    where ``prefix_run`` is the subsequence of ``candidate`` actually
    executed, or ``None`` if no terminal state is reached in
    ``max_steps`` steps.
    """
    sysm = _System(build, crash_plan_factory)
    prefix_run: List[int] = []
    for pid in candidate:
        if len(prefix_run) >= max_steps:
            return None
        cands = sysm.candidates()
        if not cands:
            break
        if pid not in cands:
            continue
        sysm.execute(pid)
        prefix_run.append(pid)
    tail: List[int] = []
    while True:
        cands = sysm.candidates()
        if not cands:
            break
        if len(prefix_run) + len(tail) >= max_steps:
            return None
        pid = cands[0]
        sysm.execute(pid)
        tail.append(pid)
    return prefix_run, tail, sysm.result()


def replay_schedule(build: Builder,
                    schedule: List[int],
                    crash_plan_factory: Optional[Callable[[], CrashPlan]]
                    = None,
                    max_steps: int = 1_000_000) -> RunResult:
    """Replay a recorded schedule against a fresh ``build()``.

    The schedule is followed step by step (entries naming processes that
    are no longer schedulable are skipped) and the run is completed
    deterministically if the schedule stops short of a terminal state.
    """
    out = _drive(build, schedule, crash_plan_factory, max_steps)
    if out is None:
        raise RuntimeError(
            f"schedule did not reach a terminal state in {max_steps} steps")
    return out[2]


def shrink_schedule(build: Builder,
                    check: Callable[[RunResult], None],
                    schedule: List[int],
                    crash_plan_factory: Optional[Callable[[], CrashPlan]]
                    = None,
                    max_steps: int = 1_000_000,
                    max_attempts: int = 2000) -> Counterexample:
    """Delta-debug a failing schedule to a locally-minimal prefix.

    ``schedule`` must make ``check`` fail (any exception counts as the
    failure being reproduced).  Chunks of the scheduling prefix are
    removed ddmin-style -- halves first, then ever smaller chunks down to
    single steps -- and every candidate is completed deterministically;
    a candidate is kept when it still fails with a strictly shorter
    prefix.  The result is 1-minimal: removing any single remaining
    prefix entry makes the failure disappear (or yields no shorter
    prefix).
    """

    def attempt(candidate: List[int]):
        out = _drive(build, candidate, crash_plan_factory, max_steps)
        if out is None:
            return None
        prefix_run, tail, result = out
        try:
            check(result)
        except Exception as exc:  # noqa: BLE001 - the failure under study
            return prefix_run, tail, exc, result
        return None

    base = attempt(list(schedule))
    if base is None:
        raise ValueError(
            "schedule does not reproduce a check failure; nothing to shrink")
    best_prefix, best_tail, best_exc, best_result = base
    attempts = 1
    chunk = max(1, len(best_prefix) // 2)
    while attempts < max_attempts:
        shrunk_this_round = False
        i = 0
        while i < len(best_prefix) and attempts < max_attempts:
            candidate = best_prefix[:i] + best_prefix[i + chunk:]
            attempts += 1
            out = attempt(candidate)
            if out is not None and len(out[0]) < len(best_prefix):
                best_prefix, best_tail, best_exc, best_result = out
                shrunk_this_round = True
                # re-examine position i: new content shifted into place
            else:
                i += chunk
        if chunk == 1 and not shrunk_this_round:
            break
        chunk = max(1, chunk // 2)
    return Counterexample(
        prefix=best_prefix,
        tail=best_tail,
        original_schedule=list(schedule),
        error=best_exc,
        result=best_result,
        build=build,
        check=check,
        crash_plan_factory=crash_plan_factory,
        max_steps=max_steps,
        ddmin_attempts=attempts,
    )


# ---------------------------------------------------------------------------
# The DPOR search itself.
# ---------------------------------------------------------------------------

class _Node:
    """One state on the current DFS path.

    ``in_pid`` / ``in_fp`` / ``in_clock`` describe the incoming step (the
    step that produced this state); the root carries ``None`` for all
    three.  ``cv_proc`` maps each process to the vector clock of its last
    executed step -- the happens-before past of its next transition.
    """

    __slots__ = ("in_pid", "in_fp", "in_clock", "cv_proc", "candidates",
                 "pending_fps", "sleep", "backtrack", "done", "visited")

    def __init__(self, in_pid, in_fp, in_clock, cv_proc, candidates,
                 pending_fps, sleep) -> None:
        self.in_pid: Optional[int] = in_pid
        self.in_fp: Optional[Footprint] = in_fp
        self.in_clock: Optional[Dict[int, int]] = in_clock
        self.cv_proc: Dict[int, Dict[int, int]] = cv_proc
        self.candidates: List[int] = candidates
        self.pending_fps: Dict[int, Optional[Footprint]] = pending_fps
        self.sleep: Set[int] = sleep
        self.backtrack: Set[int] = set()
        self.done: Set[int] = set()
        self.visited = False


def _make_node(sysm: _System, parent: Optional[_Node], pick: Optional[int],
               fp: Optional[Footprint], path: List[_Node],
               sleep: Set[int]) -> _Node:
    """Build the node reached by executing ``pick`` (with footprint
    ``fp``) from ``parent``; ``path`` holds the states *before* this one.
    """
    if parent is None:
        cv_proc: Dict[int, Dict[int, int]] = {}
        in_clock = None
    else:
        index = len(path)  # 1-based index of the incoming step
        clock = dict(parent.cv_proc.get(pick, {}))
        for j in range(1, len(path)):
            step = path[j]
            if conflicts(step.in_fp, fp):
                for q, k in step.in_clock.items():
                    if clock.get(q, 0) < k:
                        clock[q] = k
        clock[pick] = index
        cv_proc = dict(parent.cv_proc)
        cv_proc[pick] = clock
        in_clock = clock
    candidates = sysm.candidates()
    pending_fps = sysm.alive_footprints()
    return _Node(pick, fp, in_clock, cv_proc, candidates, pending_fps,
                 sleep)


def _update_backtracks(path: List[_Node]) -> None:
    """Race detection at the newly-reached state (the last node of
    ``path``): every candidate's pending step is checked against every
    earlier executed step it conflicts with but is not already
    happens-after; each such race plants a backtrack point at the state
    the earlier step executed from (the candidate itself if it was
    schedulable there, otherwise conservatively every candidate of that
    state)."""
    node = path[-1]
    depth = len(path) - 1
    for p in node.candidates:
        f_p = node.pending_fps.get(p)
        past = node.cv_proc.get(p, {})
        for j in range(depth, 0, -1):
            step = path[j]
            q = step.in_pid
            if q == p or j <= past.get(q, 0):
                continue
            if conflicts(step.in_fp, f_p):
                pre = path[j - 1]
                if p in pre.candidates:
                    if p not in pre.done and p not in pre.sleep:
                        pre.backtrack.add(p)
                else:
                    pre.backtrack.update(pre.candidates)


def _work_remains(path: List[_Node]) -> bool:
    return any(
        any(p not in node.done and p not in node.sleep
            for p in node.backtrack)
        for node in path)


def _explore_core(build: Builder,
                  check: Callable[[RunResult], None],
                  crash_plan_factory: Optional[Callable[[], CrashPlan]]
                  = None,
                  max_steps: int = 24,
                  max_runs: int = 200_000,
                  shrink: bool = True,
                  prefix: Sequence[int] = (),
                  root_sleep: Sequence[int] = (),
                  collect: bool = False,
                  counters: Optional[Dict[str, Any]] = None,
                  deadline: Optional[float] = None
                  ) -> ExplorationStats:
    """DPOR exploration of the subtree rooted at ``prefix``.

    With an empty ``prefix`` this is the full serial search.  With a
    non-empty prefix (shard mode, see :mod:`repro.runtime.parallel`) the
    prefix is replayed first and DFS proceeds only *below* its final
    state: backtrack points that race detection plants into prefix
    states are ignored here, which is sound because the frontier
    expansion that produced the shard scheduled every non-sleeping
    candidate at each pre-frontier state, so sibling shards cover those
    orderings.  ``root_sleep`` carries the shard root's sleep set across
    the process boundary.

    With ``collect=True`` the first check failure is recorded as
    ``stats.violation`` (schedule measured from the true root, prefix
    included) and the walk returns instead of raising, so a coordinator
    can pick the winning violation deterministically across shards.

    ``counters`` is an optional plain-dict metrics channel (picklable,
    so shard workers can ship it back over their result pipe): sleep-set
    hit accounting, ddmin replay counts, and shrink wall-clock go there,
    never into ``ExplorationStats`` -- collecting metrics cannot perturb
    the deterministic statistics contract.
    """
    stats = ExplorationStats()
    sysm = _System(build, crash_plan_factory)
    path: List[_Node] = [_make_node(sysm, None, None, None, [], set())]
    for pid in prefix:
        node = path[-1]
        node.visited = True
        if pid not in node.candidates:
            raise RuntimeError(
                f"shard prefix diverged: {pid} not schedulable at depth "
                f"{len(path) - 1} (candidates: {node.candidates})")
        node.done.add(pid)
        fp = sysm.execute(pid)
        child = _make_node(sysm, node, pid, fp, path, set())
        path.append(child)
    base = len(path) - 1
    path[-1].sleep = set(root_sleep)
    synced = True

    def pop_leaf() -> None:
        nonlocal synced
        path.pop()
        synced = False
        if stats.total_runs >= max_runs and _work_remains(path[base:]):
            raise _max_runs_interrupt(max_runs, stats)
        if _past_deadline(deadline) and _work_remains(path[base:]):
            raise _timeout_interrupt(stats)

    while len(path) > base:
        node = path[-1]
        depth = len(path) - 1
        if not node.visited:
            node.visited = True
            stats.max_depth_seen = max(stats.max_depth_seen, depth)
            if not node.candidates:
                # Terminal state (all decided/crashed, or exact deadlock).
                stats.complete_runs += 1
                result = sysm.result()
                try:
                    check(result)
                except Exception as exc:  # noqa: BLE001 - property failed
                    schedule = [n.in_pid for n in path[1:]]
                    if collect:
                        stats.violation = ShardViolation(
                            order_key=tuple(prefix),
                            schedule=tuple(schedule),
                            message=f"{type(exc).__name__}: {exc}",
                            error_type=type(exc).__name__)
                        return stats
                    if shrink:
                        from time import perf_counter
                        shrink_start = perf_counter()
                        counterexample = shrink_schedule(
                            build, check, schedule,
                            crash_plan_factory=crash_plan_factory,
                            max_steps=max(max_steps, len(schedule)))
                        if counters is not None:
                            counters["shrink_seconds"] = (
                                counters.get("shrink_seconds", 0.0)
                                + perf_counter() - shrink_start)
                            counters["ddmin_replays"] = (
                                counters.get("ddmin_replays", 0)
                                + counterexample.ddmin_attempts)
                    else:
                        counterexample = Counterexample(
                            prefix=schedule, tail=[],
                            original_schedule=schedule, error=exc,
                            result=result, build=build, check=check,
                            crash_plan_factory=crash_plan_factory,
                            max_steps=max(max_steps, len(schedule)))
                    raise CounterexampleFound(counterexample, stats) \
                        from exc
                pop_leaf()
                continue
            if depth >= max_steps:
                stats.truncated_runs += 1
                pop_leaf()
                continue
            explorable = [p for p in node.candidates if p not in node.sleep]
            if counters is not None:
                counters["sleep_checks"] = (counters.get("sleep_checks", 0)
                                            + len(node.candidates))
                counters["sleep_hits"] = (counters.get("sleep_hits", 0)
                                          + len(node.candidates)
                                          - len(explorable))
            if not explorable:
                # Every candidate sleeps: the whole subtree is equivalent
                # to schedules already explored elsewhere.
                stats.pruned_runs += 1
                path.pop()
                synced = False
                continue
            node.backtrack.add(explorable[0])
        pick = min((p for p in node.backtrack
                    if p not in node.done and p not in node.sleep),
                   default=None)
        if pick is None:
            # Fully explored; candidates never scheduled here were pruned
            # by the persistent-set/sleep-set argument.
            stats.pruned_runs += sum(1 for p in node.candidates
                                     if p not in node.done)
            path.pop()
            synced = False
            continue
        if not synced:
            sysm = _System(build, crash_plan_factory)
            for n in path[1:]:
                sysm.execute(n.in_pid)
            synced = True
        node.done.add(pick)
        fp = sysm.execute(pick)
        child_sleep = {
            q for q in (node.sleep | node.done) - {pick}
            if q in node.pending_fps
            and not conflicts(node.pending_fps[q], fp)}
        child = _make_node(sysm, node, pick, fp, path, child_sleep)
        path.append(child)
        _update_backtracks(path)
    return stats


def explore_dpor(build: Builder,
                 check: Callable[[RunResult], None],
                 crash_plan_factory: Optional[Callable[[], CrashPlan]]
                 = None,
                 max_steps: int = 24,
                 max_runs: int = 200_000,
                 shrink: bool = True,
                 jobs=None,
                 prefix_factor: Optional[int] = None,
                 metrics: Optional[Any] = None,
                 deadline: Optional[float] = None) -> ExplorationStats:
    """Explore one representative schedule per Mazurkiewicz trace.

    Same contract as :func:`repro.runtime.explore.explore` -- ``build()``
    returns a fresh ``(programs, store)`` pair, ``check(result)`` asserts
    the safety property on every complete run, prefixes longer than
    ``max_steps`` count as truncated, and exceeding ``max_runs`` complete
    + truncated runs raises ``RuntimeError`` (inclusive bound) -- but
    schedules equivalent up to commuting independent steps are explored
    only once.  ``stats.pruned_runs`` reports a *lower bound* on the
    schedules avoided (unexplored candidate branches plus sleep-blocked
    subtrees); the true saving is typically far larger, since each pruned
    branch roots a whole subtree.

    On a ``check`` failure the failing schedule is shrunk
    (:func:`shrink_schedule`, unless ``shrink=False``) and a
    :class:`CounterexampleFound` is raised from the original error.

    ``jobs=None`` (default) runs the classic single-process search; any
    explicit value routes to sharded exploration
    (:func:`repro.runtime.parallel.explore_parallel`), whose run counts
    depend on the sharding but never on how many workers execute it.

    ``metrics`` is an optional
    :class:`repro.analysis.metrics.ExplorationMetrics` collector;
    timing and sleep-set/ddmin counters are recorded beside the returned
    statistics, which stay bit-for-bit unchanged.

    ``deadline`` is an absolute ``time.monotonic()`` instant (computed
    by :func:`repro.runtime.explore.explore` from its ``timeout``);
    crossing it raises
    :class:`~repro.runtime.explore.ExplorationInterrupted` with the
    partial statistics.
    """
    if jobs is not None:
        from .parallel import DEFAULT_PREFIX_FACTOR, explore_parallel
        return explore_parallel(
            build, check, crash_plan_factory=crash_plan_factory,
            max_steps=max_steps, max_runs=max_runs, jobs=jobs,
            reduction="dpor", shrink=shrink,
            prefix_factor=prefix_factor or DEFAULT_PREFIX_FACTOR,
            metrics=metrics, deadline=deadline)
    if metrics is None:
        return _explore_core(build, check,
                             crash_plan_factory=crash_plan_factory,
                             max_steps=max_steps, max_runs=max_runs,
                             shrink=shrink, deadline=deadline)
    from time import perf_counter
    counters: Dict[str, Any] = {}
    start = perf_counter()
    try:
        stats = _explore_core(build, check,
                              crash_plan_factory=crash_plan_factory,
                              max_steps=max_steps, max_runs=max_runs,
                              shrink=shrink, counters=counters,
                              deadline=deadline)
    finally:
        # A serial run is one shard; shrink time was split out into the
        # counters channel, so keep the shard phase to the search proper.
        elapsed = perf_counter() - start
        metrics.record_phase(
            "shard_execution",
            max(0.0, elapsed - counters.get("shrink_seconds", 0.0)))
        metrics.absorb_counters(counters)
    metrics.record_stats(stats)
    return stats
