"""Dynamic partial-order reduction for exhaustive schedule exploration.

The naive explorer (`repro.runtime.explore`) enumerates *every*
interleaving, which is O(branching^depth) and caps exhaustive checking at
2-3 processes.  Most of those interleavings are redundant: two steps that
touch disjoint shared locations commute, so any pair of schedules that
differ only in the order of independent adjacent steps reach the same
state.  This module explores at least one representative per
Mazurkiewicz trace (equivalence class of schedules under commuting
independent steps) instead of every schedule, using the two standard
stateless model-checking devices:

* **Persistent sets via dynamic backtracking** (Flanagan & Godefroid
  2005): at each state, start with a single enabled process; whenever a
  later step is found to *race* with an earlier one (conflicting
  footprints, not already ordered by happens-before), add the racer to
  the backtrack set of the state the earlier step executed from.
  Happens-before is tracked with per-process vector clocks over the
  executed steps (program order + footprint-conflict order).  We add a
  backtrack point for *every* racing earlier step, a superset of the
  classic last-racer rule -- slightly more exploration, comfortably
  sound.
* **Sleep sets** (Godefroid 1996): a process whose next step was already
  explored from this state, and which is independent of everything
  executed since, need not be re-scheduled -- subtrees whose every
  candidate sleeps are pruned outright.
* **State caching** (stateful DPOR): every state reached during the
  search is fingerprinted canonically
  (:class:`repro.runtime.fingerprint.Fingerprinter`); when the search
  reaches a state it has already fully expanded under a subsumed sleep
  set and an equal-or-larger depth budget -- and skipping would be
  provably *observationally identical* to re-exploring (see
  :func:`_plants_are_noops`) -- the subtree is folded from the cache
  instead of re-executed.  The hit rule is deliberately exact: a hit is
  taken only when cache-on and cache-off provably visit the same
  terminal states, find the same first violation, and shrink to the
  same counterexample; declining a hit merely re-explores, which is
  always sound.  ``docs/performance.md`` develops the full argument.

Independence is decided by the read/write *footprints* that every shared
object reports for its operations (:class:`repro.runtime.ops.Footprint`,
:meth:`repro.memory.base.SharedObject.footprint`): two steps of different
processes are independent iff neither writes a location the other reads
or writes.  Crash events touch no shared state and commute with
everything.  Footprints may over-approximate (conservative) but must
never omit an accessed location.

When the property ``check()`` fails on some schedule, the failing
schedule is **shrunk** by delta debugging (:func:`shrink_schedule`): the
scheduler repeatedly removes chunks of the schedule prefix, completes
each candidate deterministically (lowest pid first), and keeps any
strictly shorter prefix that still fails, down to a locally-minimal
(1-minimal) prefix.  The result is a replayable
:class:`Counterexample` artifact raised inside a
:class:`CounterexampleFound` error.

Soundness of the reduction is pinned by ``tests/runtime/test_dpor.py``:
DPOR and the naive enumerator must visit the same set of terminal states
(statuses + decisions) on seeded micro-programs, including under crash
plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Generator, List, Optional,
                    Sequence, Set, Tuple)

from .adversary import Adversary
from .crash import CrashPlan
from .explore import (ExplorationStats, ShardViolation, _max_runs_interrupt,
                      _past_deadline, _timeout_interrupt)
from .fingerprint import Fingerprinter
from .ops import EMPTY_FOOTPRINT, Footprint, Invocation, SpinOp, conflicts
from .process import ProcessHandle, ProcessStatus
from .run import RunResult
from .scheduler import Scheduler
from .trace import Trace

#: Type of the ``build`` callback: returns a fresh ``(programs, store)``.
Builder = Callable[[], Tuple[Dict[int, Generator], Any]]


class _InertAdversary(Adversary):
    """The DPOR engine drives the scheduler directly; never consulted."""

    def pick(self, enabled, step):  # pragma: no cover - defensive
        raise AssertionError("DPOR scheduler must not consult an adversary")


class _System:
    """A live system replayed step by step under explorer control.

    Wraps a fresh ``build()`` result plus a scheduler, exposing exactly
    what the DPOR engine needs: the filtered candidate set at the current
    state, the pending footprint of each live process, and one-step
    execution returning the footprint actually exercised.

    ``fp_memo`` is an optional footprint memo *shared across rebuilds*
    of one exploration: footprints are pure functions of ``(pid, obj,
    method, args)`` for objects declaring
    :attr:`~repro.memory.base.SharedObject.FOOTPRINT_PURE` (the
    default), so re-synced systems skip re-deriving them -- the per-step
    footprint dict churn the state cache is paired with eliminating.
    """

    def __init__(self, build: Builder,
                 crash_plan_factory: Optional[Callable[[], CrashPlan]],
                 fp_memo: Optional[Dict[Any, Optional[Footprint]]] = None
                 ) -> None:
        programs, store = build()
        self._fp_memo = fp_memo if fp_memo is not None else {}
        self.store = store
        self.handles = {pid: ProcessHandle(pid, gen)
                        for pid, gen in programs.items()}
        self.scheduler = Scheduler(
            handles=self.handles,
            store=store,
            adversary=_InertAdversary(),
            crash_plan=(crash_plan_factory() if crash_plan_factory
                        else None),
            trace=Trace(enabled=False),
            max_steps=10 ** 9,
        )
        self.deadlocked = False

    # ------------------------------------------------------------------
    def _stutters(self, handle: ProcessHandle) -> bool:
        """Exact stutter pruning, identical to the naive explorer: a
        process whose single-condition spin already failed since the last
        state-changing step would deterministically fail again."""
        return (isinstance(handle.pending, SpinOp)
                and handle.pending.period == 1
                and handle.spin_failures > 0)

    def candidates(self) -> List[int]:
        """Schedulable processes at the current state (sorted).

        Pre-advances never-started generators to their first yield so
        every live process has a known pending operation (processes that
        finish without yielding decide immediately -- an invisible,
        footprint-free event).  If every enabled process is a provably
        stuck spinner, they are retired as BLOCKED and the state is
        terminal (permanent deadlock, exactly detected).
        """
        for handle in self.handles.values():
            if handle.alive and handle.pending is None:
                handle.advance()
        enabled = sorted(pid for pid, h in self.handles.items() if h.alive)
        cands = [pid for pid in enabled
                 if not self._stutters(self.handles[pid])]
        if enabled and not cands:
            self.deadlocked = True
            for pid in enabled:
                self.handles[pid].mark_blocked()
            return []
        return cands

    def pending_footprint(self, pid: int) -> Optional[Footprint]:
        """Footprint of ``pid``'s next operation (None = unknown).

        Memoized per ``(pid, obj, method, args)`` when the target object
        declares its footprints pure (``FOOTPRINT_PURE``, the default);
        unhashable arguments fall back to direct derivation.
        """
        op = self.handles[pid].pending
        if op is None:
            return None
        inv = op.invocation if isinstance(op, SpinOp) else op
        if not isinstance(inv, Invocation):
            return None
        key = (pid, inv.obj, inv.method, inv.args)
        try:
            fp = self._fp_memo.get(key)
        except TypeError:  # unhashable args: derive directly
            return self.store.footprint(pid, inv)
        if fp is not None:
            return fp
        obj = self.store[inv.obj]
        fp = obj.footprint(pid, inv.method, inv.args)
        if obj.FOOTPRINT_PURE:
            self._fp_memo[key] = fp
        return fp

    def alive_footprints(self) -> Dict[int, Optional[Footprint]]:
        return {pid: self.pending_footprint(pid)
                for pid, h in self.handles.items() if h.alive}

    def execute(self, pid: int) -> Optional[Footprint]:
        """Execute one step of ``pid``; returns the footprint exercised.

        A step that turns out to be a crash event touches no shared
        state and reports :data:`~repro.runtime.ops.EMPTY_FOOTPRINT`.
        """
        handle = self.handles[pid]
        if handle.pending is None:
            handle.advance()
        if handle.pending is None:
            return EMPTY_FOOTPRINT  # decided without yielding
        fp = self.pending_footprint(pid)
        self.scheduler._step(handle)
        if handle.status is ProcessStatus.CRASHED:
            return EMPTY_FOOTPRINT
        return fp

    def result(self) -> RunResult:
        decisions = {pid: h.decision for pid, h in self.handles.items()
                     if h.decided}
        return RunResult(
            statuses={pid: h.status for pid, h in self.handles.items()},
            decisions=decisions,
            steps=self.scheduler.steps,
            deadlocked=self.deadlocked,
            out_of_steps=False,
            trace=None,
            store=self.store,
        )


# ---------------------------------------------------------------------------
# Counterexamples and shrinking.
# ---------------------------------------------------------------------------

@dataclass
class Counterexample:
    """A replayable failing schedule, shrunk to a locally-minimal prefix.

    ``prefix`` is the minimal scheduling decisions that trigger the
    failure; ``tail`` is the deterministic completion (lowest enabled pid
    first) appended to reach a terminal state.  ``schedule`` (prefix +
    tail) replayed against a fresh ``build()`` under the same crash plan
    reproduces the violation -- :meth:`replay` does exactly that.
    """

    prefix: List[int]
    tail: List[int]
    original_schedule: List[int]
    error: BaseException
    result: RunResult
    build: Builder
    check: Callable[[RunResult], None]
    crash_plan_factory: Optional[Callable[[], CrashPlan]] = None
    max_steps: int = 1_000_000
    #: Replays ddmin spent shrinking (0 when shrinking was skipped).
    ddmin_attempts: int = 0

    @property
    def schedule(self) -> List[int]:
        """The full concrete failing schedule (prefix + completion)."""
        return self.prefix + self.tail

    def replay(self) -> RunResult:
        """Re-execute the counterexample schedule from a fresh build."""
        return replay_schedule(self.build, self.schedule,
                               crash_plan_factory=self.crash_plan_factory,
                               max_steps=self.max_steps)

    def reproduces(self) -> bool:
        """Does the schedule still make ``check`` fail on a fresh run?"""
        try:
            self.check(self.replay())
        except Exception:
            return True
        return False

    def describe(self) -> str:
        lines = [
            f"counterexample ({len(self.prefix)}-step prefix, shrunk "
            f"from a {len(self.original_schedule)}-step schedule):",
            f"  prefix   : {self.prefix}",
            f"  completion (lowest pid first): {self.tail}",
            f"  violation: {type(self.error).__name__}: {self.error}",
            f"  outcome  : {self.result.summary()}",
        ]
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.describe()


class CounterexampleFound(AssertionError):
    """Raised by the DPOR explorer when ``check()`` fails on a schedule.

    Carries the shrunk, replayable :attr:`counterexample` plus the
    exploration :attr:`stats` accumulated up to the failure.  Subclasses
    ``AssertionError`` so existing ``pytest.raises(AssertionError)``
    expectations keep working.
    """

    def __init__(self, counterexample: Counterexample,
                 stats: Optional[ExplorationStats] = None) -> None:
        self.counterexample = counterexample
        self.stats = stats
        super().__init__(counterexample.describe())


def _drive(build: Builder,
           candidate: List[int],
           crash_plan_factory: Optional[Callable[[], CrashPlan]],
           max_steps: int):
    """Run ``candidate`` as a scheduling hint, then complete it.

    Entries naming a non-schedulable process are skipped (that is what
    lets delta debugging remove chunks without invalidating the rest);
    after the hint is exhausted the run is completed deterministically,
    lowest enabled pid first.  Returns ``(prefix_run, tail, result)``
    where ``prefix_run`` is the subsequence of ``candidate`` actually
    executed, or ``None`` if no terminal state is reached in
    ``max_steps`` steps.
    """
    sysm = _System(build, crash_plan_factory)
    prefix_run: List[int] = []
    for pid in candidate:
        if len(prefix_run) >= max_steps:
            return None
        cands = sysm.candidates()
        if not cands:
            break
        if pid not in cands:
            continue
        sysm.execute(pid)
        prefix_run.append(pid)
    tail: List[int] = []
    while True:
        cands = sysm.candidates()
        if not cands:
            break
        if len(prefix_run) + len(tail) >= max_steps:
            return None
        pid = cands[0]
        sysm.execute(pid)
        tail.append(pid)
    return prefix_run, tail, sysm.result()


def replay_schedule(build: Builder,
                    schedule: List[int],
                    crash_plan_factory: Optional[Callable[[], CrashPlan]]
                    = None,
                    max_steps: int = 1_000_000) -> RunResult:
    """Replay a recorded schedule against a fresh ``build()``.

    The schedule is followed step by step (entries naming processes that
    are no longer schedulable are skipped) and the run is completed
    deterministically if the schedule stops short of a terminal state.
    """
    out = _drive(build, schedule, crash_plan_factory, max_steps)
    if out is None:
        raise RuntimeError(
            f"schedule did not reach a terminal state in {max_steps} steps")
    return out[2]


def shrink_schedule(build: Builder,
                    check: Callable[[RunResult], None],
                    schedule: List[int],
                    crash_plan_factory: Optional[Callable[[], CrashPlan]]
                    = None,
                    max_steps: int = 1_000_000,
                    max_attempts: int = 2000) -> Counterexample:
    """Delta-debug a failing schedule to a locally-minimal prefix.

    ``schedule`` must make ``check`` fail (any exception counts as the
    failure being reproduced).  Chunks of the scheduling prefix are
    removed ddmin-style -- halves first, then ever smaller chunks down to
    single steps -- and every candidate is completed deterministically;
    a candidate is kept when it still fails with a strictly shorter
    prefix.  The result is 1-minimal: removing any single remaining
    prefix entry makes the failure disappear (or yields no shorter
    prefix).
    """

    def attempt(candidate: List[int]):
        out = _drive(build, candidate, crash_plan_factory, max_steps)
        if out is None:
            return None
        prefix_run, tail, result = out
        try:
            check(result)
        except Exception as exc:  # noqa: BLE001 - the failure under study
            return prefix_run, tail, exc, result
        return None

    base = attempt(list(schedule))
    if base is None:
        raise ValueError(
            "schedule does not reproduce a check failure; nothing to shrink")
    best_prefix, best_tail, best_exc, best_result = base
    attempts = 1
    chunk = max(1, len(best_prefix) // 2)
    while attempts < max_attempts:
        shrunk_this_round = False
        i = 0
        while i < len(best_prefix) and attempts < max_attempts:
            candidate = best_prefix[:i] + best_prefix[i + chunk:]
            attempts += 1
            out = attempt(candidate)
            if out is not None and len(out[0]) < len(best_prefix):
                best_prefix, best_tail, best_exc, best_result = out
                shrunk_this_round = True
                # re-examine position i: new content shifted into place
            else:
                i += chunk
        if chunk == 1 and not shrunk_this_round:
            break
        chunk = max(1, chunk // 2)
    return Counterexample(
        prefix=best_prefix,
        tail=best_tail,
        original_schedule=list(schedule),
        error=best_exc,
        result=best_result,
        build=build,
        check=check,
        crash_plan_factory=crash_plan_factory,
        max_steps=max_steps,
        ddmin_attempts=attempts,
    )


# ---------------------------------------------------------------------------
# The DPOR search itself.
# ---------------------------------------------------------------------------

class _Node:
    """One state on the current DFS path.

    ``in_pid`` / ``in_fp`` / ``in_clock`` describe the incoming step (the
    step that produced this state); the root carries ``None`` for all
    three.  ``cv_proc`` maps each process to the vector clock of its last
    executed step -- the happens-before past of its next transition.
    """

    __slots__ = ("in_pid", "in_fp", "in_clock", "cv_proc", "candidates",
                 "pending_fps", "sleep", "backtrack", "done", "visited",
                 "fpr", "snap", "sub_pairs", "sub_max", "fp_parts")

    def __init__(self, in_pid, in_fp, in_clock, cv_proc, candidates,
                 pending_fps, sleep) -> None:
        self.in_pid: Optional[int] = in_pid
        self.in_fp: Optional[Footprint] = in_fp
        self.in_clock: Optional[Dict[int, int]] = in_clock
        self.cv_proc: Dict[int, Dict[int, int]] = cv_proc
        self.candidates: List[int] = candidates
        self.pending_fps: Dict[int, Optional[Footprint]] = pending_fps
        self.sleep: Set[int] = sleep
        self.backtrack: Set[int] = set()
        self.done: Set[int] = set()
        self.visited = False
        # State-cache bookkeeping (unused when the cache is disabled):
        # the state fingerprint, the statistics snapshot taken when this
        # node was pushed, the (pid, footprint) race summary plus depth
        # watermark accumulated over the node's explored subtree, and
        # the (object-parts, process-heavy-parts) dicts children derive
        # their own fingerprints from incrementally.
        self.fpr: Optional[tuple] = None
        self.snap: Optional[tuple] = None
        self.sub_pairs: Optional[Set[tuple]] = None
        self.sub_max: int = 0
        self.fp_parts: Optional[tuple] = None


def _make_node(sysm: _System, parent: Optional[_Node], pick: Optional[int],
               fp: Optional[Footprint], path: List[_Node],
               sleep: Set[int]) -> _Node:
    """Build the node reached by executing ``pick`` (with footprint
    ``fp``) from ``parent``; ``path`` holds the states *before* this one.
    """
    if parent is None:
        cv_proc: Dict[int, Dict[int, int]] = {}
        in_clock = None
    else:
        index = len(path)  # 1-based index of the incoming step
        clock = dict(parent.cv_proc.get(pick, {}))
        for j in range(1, len(path)):
            step = path[j]
            if conflicts(step.in_fp, fp):
                for q, k in step.in_clock.items():
                    if clock.get(q, 0) < k:
                        clock[q] = k
        clock[pick] = index
        cv_proc = dict(parent.cv_proc)
        cv_proc[pick] = clock
        in_clock = clock
    candidates = sysm.candidates()
    pending_fps = sysm.alive_footprints()
    return _Node(pick, fp, in_clock, cv_proc, candidates, pending_fps,
                 sleep)


def _update_backtracks(path: List[_Node]) -> None:
    """Race detection at the newly-reached state (the last node of
    ``path``): every candidate's pending step is checked against every
    earlier executed step it conflicts with but is not already
    happens-after; each such race plants a backtrack point at the state
    the earlier step executed from (the candidate itself if it was
    schedulable there, otherwise conservatively every candidate of that
    state)."""
    node = path[-1]
    depth = len(path) - 1
    for p in node.candidates:
        f_p = node.pending_fps.get(p)
        past = node.cv_proc.get(p, {})
        for j in range(depth, 0, -1):
            step = path[j]
            q = step.in_pid
            if q == p or j <= past.get(q, 0):
                continue
            if conflicts(step.in_fp, f_p):
                pre = path[j - 1]
                if p in pre.candidates:
                    if p not in pre.done and p not in pre.sleep:
                        pre.backtrack.add(p)
                else:
                    pre.backtrack.update(pre.candidates)


def _work_remains(path: List[_Node]) -> bool:
    return any(
        any(p not in node.done and p not in node.sleep
            for p in node.backtrack)
        for node in path)


# ---------------------------------------------------------------------------
# The state cache (stateful DPOR).
# ---------------------------------------------------------------------------

class _CacheEntry:
    """The recorded outcome of fully expanding one (state, sleep) node.

    ``sleep`` / ``rem`` are the sleep set and remaining depth budget the
    node was expanded under; a later arrival may reuse the entry only
    with a *superset* sleep set and an *equal-or-smaller* remaining
    budget, so the recorded subtree covers everything re-exploration
    could visit.  Recorded entries are violation-free by construction
    (a violation aborts the search before any ancestor pops), so
    skipping never hides a counterexample; for a strictly-subsumed
    reuse the folded run counts over-approximate what re-exploration
    would have counted, which is why differential comparisons go
    through ``ExplorationStats.deterministic_view`` rather than raw
    counts.  ``complete`` / ``truncated`` / ``pruned`` are the
    run-count deltas the subtree contributed; ``sleep_checks`` /
    ``sleep_hits`` the metrics-counter deltas; ``pairs`` the (pid,
    footprint) summary of every step candidate *strictly below* the
    node, used by :func:`_plants_are_noops`; ``rel_max`` the subtree's
    depth watermark relative to the node.
    """

    __slots__ = ("sleep", "rem", "complete", "truncated", "pruned",
                 "sleep_checks", "sleep_hits", "pairs", "rel_max")

    def __init__(self, sleep, rem, complete, truncated, pruned,
                 sleep_checks, sleep_hits, pairs, rel_max) -> None:
        self.sleep: frozenset = sleep
        self.rem: int = rem
        self.complete: int = complete
        self.truncated: int = truncated
        self.pruned: int = pruned
        self.sleep_checks: int = sleep_checks
        self.sleep_hits: int = sleep_hits
        self.pairs: frozenset = pairs
        self.rel_max: int = rel_max


def _plants_are_noops(pairs, path: List[_Node], base: int) -> bool:
    """Would replaying the cached subtree plant any backtrack point the
    current path does not already semantically contain?

    ``pairs`` summarizes every (pid, pending footprint) that occurred at
    any state strictly inside the recorded subtree.  Race detection from
    those states walks down into the shared path prefix; a hit is only
    sound if every backtrack point such a walk could plant is already a
    no-op -- the racer is already in the pre-state's ``backtrack``,
    ``done``, or ``sleep`` set (planting a done/sleeping pid never
    schedules anything: the DFS pick filters both out, and
    :func:`_work_remains` ignores them).  The conservative branch of
    :func:`_update_backtracks` (racer not schedulable at the pre-state)
    plants *every* candidate, so all of them must be no-ops there.

    This check makes the cache *exact* rather than merely sound: when it
    passes, skipping the subtree leaves every backtrack set on the path
    in a state equivalent to what cache-off re-exploration would have
    produced, so the DFS continues identically.  When it fails the hit
    is declined and the subtree re-explored -- never wrong, just slower.

    Happens-before is deliberately ignored here (treated as "no edge"):
    real vector clocks could only *suppress* plants, so checking every
    conflicting pair over-approximates the plants cache-off could make.
    """
    depth = len(path) - 1
    for p, f_p in pairs:
        for j in range(depth, base, -1):
            step = path[j]
            if step.in_pid == p:
                continue
            if conflicts(step.in_fp, f_p):
                pre = path[j - 1]
                if p in pre.candidates:
                    if (p not in pre.backtrack and p not in pre.done
                            and p not in pre.sleep):
                        return False
                else:
                    for c in pre.candidates:
                        if (c not in pre.backtrack and c not in pre.done
                                and c not in pre.sleep):
                            return False
    return True


class _StateCache:
    """Fingerprint -> fully-expanded-subtree cache for one exploration.

    One cache per :func:`_explore_core` call (per shard, in parallel
    mode), so ``jobs=1`` and ``jobs=N`` stay bit-for-bit identical: a
    shard never sees hits against a sibling's subtrees.  Buckets hold
    one entry per distinct (sleep, rem) expansion of a state; lookups
    scan for the first reusable entry (see :class:`_CacheEntry` and
    :func:`_plants_are_noops` for the exactness argument).
    """

    __slots__ = ("fingerprinter", "entries", "hits", "skipped_runs",
                 "_full_override")

    def __init__(self, fingerprinter: Optional[Fingerprinter] = None
                 ) -> None:
        self.fingerprinter = (fingerprinter if fingerprinter is not None
                              else Fingerprinter())
        self.entries: Dict[tuple, List[_CacheEntry]] = {}
        self.hits = 0
        self.skipped_runs = 0
        # A subclass overriding the whole-system ``fingerprint`` (e.g. a
        # deliberately-colliding test stub) must see every state: the
        # incremental part-reuse path below would silently bypass it.
        self._full_override = (type(self.fingerprinter).fingerprint
                               is not Fingerprinter.fingerprint)

    def fingerprint(self, sysm: _System) -> tuple:
        """Canonical fingerprint of the system's current state."""
        return self.fingerprinter.fingerprint(sysm)

    def fingerprint_node(self, sysm: _System, parent: Optional[_Node],
                         pick: Optional[int],
                         step_fp: Optional[Footprint]
                         ) -> Tuple[tuple, tuple]:
        """Fingerprint the state reached by executing ``pick`` (with
        declared footprint ``step_fp``) from ``parent``, incrementally.

        One step can change only the stepping process's heavy part and
        the audited state of objects its footprint *writes* (an
        undeclared write would already be a DPOR-soundness bug: race
        detection relies on the same declaration); everything volatile
        -- spin counters, plan state, the step counter -- is read fresh
        by :meth:`Fingerprinter.assemble`.  Per-object granularity is by
        *name*, so Byzantine rewrites (which preserve the target object)
        and ``WHOLE``-key footprints are covered.  ``step_fp is None``
        (unknown footprint) falls back to recomputing every object.

        Returns ``(fingerprint, (obj_parts, heavy))``; the parts are
        stored on the node and shared structurally with children, which
        copy before mutating.
        """
        f = self.fingerprinter
        if self._full_override:
            return f.fingerprint(sysm), None
        parts = parent.fp_parts if parent is not None else None
        if parts is None:
            obj_parts = f.object_parts(sysm)
            heavy = f.heavy_parts(sysm)
        else:
            p_objs, p_heavy = parts
            if step_fp is None:
                obj_parts = f.object_parts(sysm)
            else:
                written = {loc[0] for loc in step_fp.writes}
                if written:
                    obj_parts = dict(p_objs)
                    store = sysm.store
                    for name in written:
                        obj_parts[name] = f.object_fingerprint(
                            store[name])
                else:
                    obj_parts = p_objs  # shared; children copy on write
            heavy = dict(p_heavy)
            heavy[pick] = f.process_heavy(sysm.handles[pick])
        return f.assemble(sysm, obj_parts, heavy), (obj_parts, heavy)

    def record(self, fpr: tuple, sleep: frozenset, rem: int,
               complete: int, truncated: int, pruned: int,
               sleep_checks: int, sleep_hits: int,
               pairs: frozenset, rel_max: int) -> None:
        """Store the expansion outcome of one popped node."""
        bucket = self.entries.setdefault(fpr, [])
        for entry in bucket:
            if entry.sleep == sleep and entry.rem == rem:
                return  # an identical expansion is already recorded
        bucket.append(_CacheEntry(sleep, rem, complete, truncated,
                                  pruned, sleep_checks, sleep_hits,
                                  pairs, rel_max))

    def lookup(self, fpr: tuple, sleep: Set[int], rem: int,
               path: List[_Node], base: int) -> Optional[_CacheEntry]:
        """First entry whose reuse here is provably exact, else None."""
        bucket = self.entries.get(fpr)
        if not bucket:
            return None
        for entry in bucket:
            if (entry.rem >= rem and entry.sleep.issubset(sleep)
                    and _plants_are_noops(entry.pairs, path, base)):
                self.hits += 1
                self.skipped_runs += entry.complete + entry.truncated
                return entry
        return None


def _explore_core(build: Builder,
                  check: Callable[[RunResult], None],
                  crash_plan_factory: Optional[Callable[[], CrashPlan]]
                  = None,
                  max_steps: int = 24,
                  max_runs: int = 200_000,
                  shrink: bool = True,
                  prefix: Sequence[int] = (),
                  root_sleep: Sequence[int] = (),
                  collect: bool = False,
                  counters: Optional[Dict[str, Any]] = None,
                  deadline: Optional[float] = None,
                  state_cache: bool = True,
                  fingerprinter: Optional[Fingerprinter] = None
                  ) -> ExplorationStats:
    """DPOR exploration of the subtree rooted at ``prefix``.

    With an empty ``prefix`` this is the full serial search.  With a
    non-empty prefix (shard mode, see :mod:`repro.runtime.parallel`) the
    prefix is replayed first and DFS proceeds only *below* its final
    state: backtrack points that race detection plants into prefix
    states are ignored here, which is sound because the frontier
    expansion that produced the shard scheduled every non-sleeping
    candidate at each pre-frontier state, so sibling shards cover those
    orderings.  ``root_sleep`` carries the shard root's sleep set across
    the process boundary.

    With ``collect=True`` the first check failure is recorded as
    ``stats.violation`` (schedule measured from the true root, prefix
    included) and the walk returns instead of raising, so a coordinator
    can pick the winning violation deterministically across shards.

    ``counters`` is an optional plain-dict metrics channel (picklable,
    so shard workers can ship it back over their result pipe): sleep-set
    hit accounting, cache hit/skip counts, ddmin replay counts, and
    shrink wall-clock go there, never into ``ExplorationStats`` --
    collecting metrics cannot perturb the deterministic statistics
    contract.

    ``state_cache`` enables the prefix-equivalence cache
    (:class:`_StateCache`, default on): subtrees rooted at an
    already-expanded (fingerprint, subsumed-sleep-set) state are folded
    from the cache instead of re-executed.  ``fingerprinter`` overrides
    the canonical :class:`~repro.runtime.fingerprint.Fingerprinter`
    (tests inject deliberately-colliding stubs to prove the
    differential tier catches unsound caching).
    """
    stats = ExplorationStats()
    cache = _StateCache(fingerprinter) if state_cache else None
    fp_memo: Dict[Any, Optional[Footprint]] = {}
    sysm = _System(build, crash_plan_factory, fp_memo)
    path: List[_Node] = [_make_node(sysm, None, None, None, [], set())]
    for pid in prefix:
        node = path[-1]
        node.visited = True
        if pid not in node.candidates:
            raise RuntimeError(
                f"shard prefix diverged: {pid} not schedulable at depth "
                f"{len(path) - 1} (candidates: {node.candidates})")
        node.done.add(pid)
        fp = sysm.execute(pid)
        child = _make_node(sysm, node, pid, fp, path, set())
        path.append(child)
    base = len(path) - 1
    path[-1].sleep = set(root_sleep)
    if cache is not None:
        for d, node in enumerate(path):
            node.sub_pairs = set()
            node.sub_max = d
        if not cache._full_override:
            path[-1].fp_parts = (cache.fingerprinter.object_parts(sysm),
                                 cache.fingerprinter.heavy_parts(sysm))
    synced = True

    def counter_snapshot() -> Tuple[int, int]:
        if counters is None:
            return (0, 0)
        return (counters.get("sleep_checks", 0),
                counters.get("sleep_hits", 0))

    def fold_into_parent(child: _Node, pairs, sub_max: int) -> None:
        # The parent's subtree summary gains the popped/skipped child's
        # descendants plus the child's own step candidates (the child is
        # a strict descendant of the parent).
        parent = path[-1]
        parent.sub_pairs.update(pairs)
        for p in child.candidates:
            parent.sub_pairs.add((p, child.pending_fps.get(p)))
        if sub_max > parent.sub_max:
            parent.sub_max = sub_max

    def check_budget() -> None:
        if stats.total_runs >= max_runs and _work_remains(path[base:]):
            raise _max_runs_interrupt(max_runs, stats)
        if _past_deadline(deadline) and _work_remains(path[base:]):
            raise _timeout_interrupt(stats)

    def pop_top() -> None:
        # Pop the fully-processed top node; with the cache enabled,
        # record its expansion as a cache entry and fold its subtree
        # summary into its parent.
        nonlocal synced
        child = path.pop()
        synced = False
        if cache is None:
            return
        d = len(path)  # the popped node's depth
        if d <= base:
            return
        snap = child.snap
        c_checks, c_hits = counter_snapshot()
        cache.record(
            child.fpr, frozenset(child.sleep), max_steps - d,
            stats.complete_runs - snap[0],
            stats.truncated_runs - snap[1],
            stats.pruned_runs - snap[2],
            c_checks - snap[3], c_hits - snap[4],
            frozenset(child.sub_pairs), child.sub_max - d)
        fold_into_parent(child, child.sub_pairs, child.sub_max)

    def try_cache(child: _Node, parent: _Node, pick: int,
                  step_fp: Optional[Footprint]) -> bool:
        # Fingerprint the just-pushed node; either skip its whole
        # subtree via a cached entry (folding the entry's recorded
        # statistics) or arm the node for recording at pop time.  Runs
        # *after* _update_backtracks, so the node's own step candidates
        # have planted their races exactly as cache-off would.
        nonlocal synced
        d = len(path) - 1
        child.sub_pairs = set()
        child.sub_max = d
        child.fpr, child.fp_parts = cache.fingerprint_node(
            sysm, parent, pick, step_fp)
        child.snap = ((stats.complete_runs, stats.truncated_runs,
                       stats.pruned_runs) + counter_snapshot())
        entry = cache.lookup(child.fpr, child.sleep, max_steps - d,
                             path, base)
        if entry is None:
            return False
        stats.complete_runs += entry.complete
        stats.truncated_runs += entry.truncated
        stats.pruned_runs += entry.pruned
        reach = min(d + entry.rel_max, max_steps)
        if reach > stats.max_depth_seen:
            stats.max_depth_seen = reach
        if counters is not None:
            counters["sleep_checks"] = (counters.get("sleep_checks", 0)
                                        + entry.sleep_checks)
            counters["sleep_hits"] = (counters.get("sleep_hits", 0)
                                      + entry.sleep_hits)
            counters["cache_hits"] = counters.get("cache_hits", 0) + 1
            counters["cache_skipped_runs"] = (
                counters.get("cache_skipped_runs", 0)
                + entry.complete + entry.truncated)
        path.pop()
        synced = False
        fold_into_parent(child, entry.pairs,
                         min(d + entry.rel_max, max_steps))
        check_budget()
        return True

    while len(path) > base:
        node = path[-1]
        depth = len(path) - 1
        if not node.visited:
            node.visited = True
            stats.max_depth_seen = max(stats.max_depth_seen, depth)
            if not node.candidates:
                # Terminal state (all decided/crashed, or exact deadlock).
                stats.complete_runs += 1
                result = sysm.result()
                try:
                    check(result)
                except Exception as exc:  # noqa: BLE001 - property failed
                    schedule = [n.in_pid for n in path[1:]]
                    if collect:
                        stats.violation = ShardViolation(
                            order_key=tuple(prefix),
                            schedule=tuple(schedule),
                            message=f"{type(exc).__name__}: {exc}",
                            error_type=type(exc).__name__)
                        return stats
                    if shrink:
                        from time import perf_counter
                        shrink_start = perf_counter()
                        counterexample = shrink_schedule(
                            build, check, schedule,
                            crash_plan_factory=crash_plan_factory,
                            max_steps=max(max_steps, len(schedule)))
                        if counters is not None:
                            counters["shrink_seconds"] = (
                                counters.get("shrink_seconds", 0.0)
                                + perf_counter() - shrink_start)
                            counters["ddmin_replays"] = (
                                counters.get("ddmin_replays", 0)
                                + counterexample.ddmin_attempts)
                    else:
                        counterexample = Counterexample(
                            prefix=schedule, tail=[],
                            original_schedule=schedule, error=exc,
                            result=result, build=build, check=check,
                            crash_plan_factory=crash_plan_factory,
                            max_steps=max(max_steps, len(schedule)))
                    raise CounterexampleFound(counterexample, stats) \
                        from exc
                pop_top()
                check_budget()
                continue
            if depth >= max_steps:
                stats.truncated_runs += 1
                pop_top()
                check_budget()
                continue
            explorable = [p for p in node.candidates if p not in node.sleep]
            if counters is not None:
                counters["sleep_checks"] = (counters.get("sleep_checks", 0)
                                            + len(node.candidates))
                counters["sleep_hits"] = (counters.get("sleep_hits", 0)
                                          + len(node.candidates)
                                          - len(explorable))
            if not explorable:
                # Every candidate sleeps: the whole subtree is equivalent
                # to schedules already explored elsewhere.
                stats.pruned_runs += 1
                pop_top()
                continue
            node.backtrack.add(explorable[0])
        pick = min((p for p in node.backtrack
                    if p not in node.done and p not in node.sleep),
                   default=None)
        if pick is None:
            # Fully explored; candidates never scheduled here were pruned
            # by the persistent-set/sleep-set argument.
            stats.pruned_runs += sum(1 for p in node.candidates
                                     if p not in node.done)
            pop_top()
            continue
        if not synced:
            sysm = _System(build, crash_plan_factory, fp_memo)
            for n in path[1:]:
                sysm.execute(n.in_pid)
            synced = True
        node.done.add(pick)
        fp = sysm.execute(pick)
        child_sleep = {
            q for q in (node.sleep | node.done) - {pick}
            if q in node.pending_fps
            and not conflicts(node.pending_fps[q], fp)}
        child = _make_node(sysm, node, pick, fp, path, child_sleep)
        path.append(child)
        _update_backtracks(path)
        if cache is not None:
            try_cache(child, node, pick, fp)
    return stats


def explore_dpor(build: Builder,
                 check: Callable[[RunResult], None],
                 crash_plan_factory: Optional[Callable[[], CrashPlan]]
                 = None,
                 max_steps: int = 24,
                 max_runs: int = 200_000,
                 shrink: bool = True,
                 jobs=None,
                 prefix_factor: Optional[int] = None,
                 metrics: Optional[Any] = None,
                 deadline: Optional[float] = None,
                 state_cache: bool = True,
                 fingerprinter: Optional[Fingerprinter] = None
                 ) -> ExplorationStats:
    """Explore one representative schedule per Mazurkiewicz trace.

    Same contract as :func:`repro.runtime.explore.explore` -- ``build()``
    returns a fresh ``(programs, store)`` pair, ``check(result)`` asserts
    the safety property on every complete run, prefixes longer than
    ``max_steps`` count as truncated, and exceeding ``max_runs`` complete
    + truncated runs raises ``RuntimeError`` (inclusive bound) -- but
    schedules equivalent up to commuting independent steps are explored
    only once.  ``stats.pruned_runs`` reports a *lower bound* on the
    schedules avoided (unexplored candidate branches plus sleep-blocked
    subtrees); the true saving is typically far larger, since each pruned
    branch roots a whole subtree.

    On a ``check`` failure the failing schedule is shrunk
    (:func:`shrink_schedule`, unless ``shrink=False``) and a
    :class:`CounterexampleFound` is raised from the original error.

    ``jobs=None`` (default) runs the classic single-process search; any
    explicit value routes to sharded exploration
    (:func:`repro.runtime.parallel.explore_parallel`), whose run counts
    depend on the sharding but never on how many workers execute it.

    ``metrics`` is an optional
    :class:`repro.analysis.metrics.ExplorationMetrics` collector;
    timing and sleep-set/ddmin counters are recorded beside the returned
    statistics, which stay bit-for-bit unchanged.

    ``deadline`` is an absolute ``time.monotonic()`` instant (computed
    by :func:`repro.runtime.explore.explore` from its ``timeout``);
    crossing it raises
    :class:`~repro.runtime.explore.ExplorationInterrupted` with the
    partial statistics.

    ``state_cache`` (default on) enables the prefix-equivalence state
    cache; ``--no-state-cache`` on the CLI and ``state_cache=False``
    here turn it off (the escape hatch the differential test tier
    compares against).  ``fingerprinter`` injects a custom
    :class:`~repro.runtime.fingerprint.Fingerprinter` (serial engine
    only -- custom fingerprinters do not cross the worker boundary).
    """
    if jobs is not None:
        from .parallel import DEFAULT_PREFIX_FACTOR, explore_parallel
        return explore_parallel(
            build, check, crash_plan_factory=crash_plan_factory,
            max_steps=max_steps, max_runs=max_runs, jobs=jobs,
            reduction="dpor", shrink=shrink,
            prefix_factor=prefix_factor or DEFAULT_PREFIX_FACTOR,
            metrics=metrics, deadline=deadline,
            state_cache=state_cache)
    if metrics is None:
        return _explore_core(build, check,
                             crash_plan_factory=crash_plan_factory,
                             max_steps=max_steps, max_runs=max_runs,
                             shrink=shrink, deadline=deadline,
                             state_cache=state_cache,
                             fingerprinter=fingerprinter)
    from time import perf_counter
    counters: Dict[str, Any] = {}
    start = perf_counter()
    try:
        stats = _explore_core(build, check,
                              crash_plan_factory=crash_plan_factory,
                              max_steps=max_steps, max_runs=max_runs,
                              shrink=shrink, counters=counters,
                              deadline=deadline,
                              state_cache=state_cache,
                              fingerprinter=fingerprinter)
    finally:
        # A serial run is one shard; shrink time was split out into the
        # counters channel, so keep the shard phase to the search proper.
        elapsed = perf_counter() - start
        metrics.record_phase(
            "shard_execution",
            max(0.0, elapsed - counters.get("shrink_seconds", 0.0)))
        metrics.absorb_counters(counters)
    metrics.record_stats(stats)
    return stats
