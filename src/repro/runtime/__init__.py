"""Cooperative-step execution runtime for asynchronous shared memory.

See DESIGN.md Section 2: processes are generators yielding one atomic
operation per step; a seeded adversary chooses the interleaving and a crash
plan injects failures.  This replaces OS threads (whose scheduling the GIL
obscures) with exactly the adversarial atomic-step semantics of the
ASM(n, t, x) model.
"""

from .adversary import (Adversary, PriorityAdversary, RoundRobinAdversary,
                        ScriptedAdversary, SeededRandomAdversary)
from .crash import CrashPlan, CrashPoint, op_on
from .dpor import (Counterexample, CounterexampleFound, explore_dpor,
                   replay_schedule, shrink_schedule)
from .explore import (ExplorationInterrupted, ExplorationStats,
                      ShardViolation, explore)
from .fingerprint import Fingerprinter
from .faults import (ArbitraryPropose, CorruptWrite, FaultBehavior,
                     FaultPlan, FaultTrigger, StaleReadReplay,
                     byzantine_writer)
from .frontier import FrontierMismatch, FrontierStore
from .lease import Lease, LeaseTable
from .netshard import (ChaosProxy, ServerGone, ShardServer, ShardWorker,
                       WorkerUnavailable, backoff_delay)
from .parallel import (execute_shard, explore_parallel, fork_available,
                       resolve_jobs, run_pool)
from .ops import (EMPTY_FOOTPRINT, SPIN_FAILED, WHOLE, Footprint,
                  Invocation, LocalOp, ObjectProxy, SpinOp, conflicts,
                  indexed_proxy, spin, wait_until)
from .process import NO_DECISION, ProcessHandle, ProcessStatus
from .run import RunResult, run_processes
from .scheduler import ScheduleError, Scheduler, SchedulerOutcome
from .trace import Event, EventKind, Trace
from .wire import (BadMagic, ChecksumMismatch, ConnectionClosed,
                   FrameTooLarge, FrameTruncated, VersionMismatch,
                   WireError, WireTimeout)

__all__ = [
    "Adversary", "PriorityAdversary", "RoundRobinAdversary",
    "ScriptedAdversary", "SeededRandomAdversary",
    "CrashPlan", "CrashPoint", "op_on",
    "Counterexample", "CounterexampleFound", "explore_dpor",
    "replay_schedule", "shrink_schedule",
    "ExplorationInterrupted", "ExplorationStats", "ShardViolation",
    "explore",
    "Fingerprinter",
    "ArbitraryPropose", "CorruptWrite", "FaultBehavior", "FaultPlan",
    "FaultTrigger", "StaleReadReplay", "byzantine_writer",
    "FrontierMismatch", "FrontierStore",
    "Lease", "LeaseTable",
    "ChaosProxy", "ServerGone", "ShardServer", "ShardWorker",
    "WorkerUnavailable", "backoff_delay",
    "execute_shard", "explore_parallel", "fork_available", "resolve_jobs",
    "run_pool",
    "EMPTY_FOOTPRINT", "SPIN_FAILED", "WHOLE", "Footprint",
    "Invocation", "LocalOp", "ObjectProxy", "SpinOp", "conflicts",
    "indexed_proxy", "spin", "wait_until",
    "NO_DECISION", "ProcessHandle", "ProcessStatus",
    "RunResult", "run_processes",
    "ScheduleError", "Scheduler", "SchedulerOutcome",
    "Event", "EventKind", "Trace",
    "BadMagic", "ChecksumMismatch", "ConnectionClosed", "FrameTooLarge",
    "FrameTruncated", "VersionMismatch", "WireError", "WireTimeout",
]
