"""Run harness: wire processes, store, adversary and crash plan together.

`run_processes` is the low-level entry point (explicit generators and
store); `repro.algorithms.protocol.run_algorithm` builds on it for the
Algorithm abstraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, Optional, Set

from .adversary import Adversary, RoundRobinAdversary
from .crash import CrashPlan
from .process import NO_DECISION, ProcessHandle, ProcessStatus
from .scheduler import Scheduler
from .trace import Trace


@dataclass
class RunResult:
    """Outcome of one execution.

    ``decisions`` maps pid -> decided value for processes that decided;
    processes that crashed, blocked, or ran out of steps are absent.
    """

    statuses: Dict[int, ProcessStatus]
    decisions: Dict[int, Any]
    steps: int
    deadlocked: bool
    out_of_steps: bool
    trace: Optional[Trace] = None
    store: Any = None

    # -- queries -------------------------------------------------------
    @property
    def decided_pids(self) -> Set[int]:
        return set(self.decisions)

    @property
    def decided_values(self) -> Set[Any]:
        return set(self.decisions.values())

    @property
    def crashed_pids(self) -> Set[int]:
        return {p for p, s in self.statuses.items()
                if s is ProcessStatus.CRASHED}

    @property
    def blocked_pids(self) -> Set[int]:
        return {p for p, s in self.statuses.items()
                if s is ProcessStatus.BLOCKED}

    @property
    def running_pids(self) -> Set[int]:
        """Processes the step budget cut off while still live."""
        return {p for p, s in self.statuses.items()
                if s is ProcessStatus.RUNNING}

    @property
    def correct_pids(self) -> Set[int]:
        return {p for p, s in self.statuses.items()
                if s is not ProcessStatus.CRASHED}

    def all_correct_decided(self) -> bool:
        """Liveness check: every non-crashed process decided."""
        return all(s is not ProcessStatus.RUNNING
                   and s is not ProcessStatus.BLOCKED
                   for s in self.statuses.values()
                   if s is not ProcessStatus.CRASHED) and \
            self.correct_pids == self.decided_pids

    def summary(self) -> str:
        """One-line human-readable outcome."""
        parts = [f"steps={self.steps}"]
        if self.deadlocked:
            parts.append("DEADLOCK")
        if self.out_of_steps:
            parts.append("OUT-OF-STEPS")
        parts.append(f"decided={sorted(self.decisions.items())}")
        if self.crashed_pids:
            parts.append(f"crashed={sorted(self.crashed_pids)}")
        if self.blocked_pids:
            parts.append(f"blocked={sorted(self.blocked_pids)}")
        return " ".join(parts)


def run_processes(programs: Dict[int, Generator],
                  store,
                  adversary: Optional[Adversary] = None,
                  crash_plan: Optional[CrashPlan] = None,
                  max_steps: int = 1_000_000,
                  record_trace: bool = False) -> RunResult:
    """Execute the given process generators to completion.

    ``programs`` maps pid -> generator.  Returns a :class:`RunResult`; the
    store is attached to the result so tests can inspect final object state.
    """
    handles = {pid: ProcessHandle(pid, gen)
               for pid, gen in programs.items()}
    trace = Trace(enabled=record_trace)
    scheduler = Scheduler(
        handles=handles,
        store=store,
        adversary=adversary or RoundRobinAdversary(),
        crash_plan=crash_plan,
        trace=trace,
        max_steps=max_steps,
    )
    _bind_oracles(store, scheduler)
    outcome = scheduler.run()
    decisions = {pid: h.decision for pid, h in handles.items()
                 if h.decided}
    return RunResult(
        statuses={pid: h.status for pid, h in handles.items()},
        decisions=decisions,
        steps=outcome.steps,
        deadlocked=outcome.deadlocked,
        out_of_steps=outcome.out_of_steps,
        trace=trace if record_trace else None,
        store=store,
    )


def _bind_oracles(store, scheduler) -> None:
    """Give failure-detector objects access to the live crash state."""
    try:
        objects = list(store)
    except TypeError:
        return
    context = None
    for obj in objects:
        if getattr(obj, "oracle", False) and hasattr(obj, "bind"):
            if context is None:
                from ..detectors.base import OracleContext
                context = OracleContext(scheduler)
            obj.bind(context)
