"""Canonical state fingerprinting for the stateful-DPOR prefix cache.

The DPOR explorer (:mod:`repro.runtime.dpor`) re-executes a schedule
prefix from scratch every time it backtracks, and explores every
representative the persistent-set over-approximation plants even when
two representatives reach the *same* concrete state.  A
:class:`Fingerprinter` turns the complete observable state of a live
system -- every shared object's audited state, every process's
continuation point, the scheduler step counter, and the mutable state of
any crash/fault plan -- into a stable, hashable *canonical form*, so the
explorer can recognise "I have fully expanded this state before" and
skip the redundant subtree (see ``_StateCache`` in
:mod:`repro.runtime.dpor` and ``docs/performance.md``).

Soundness contract
------------------

A fingerprint collision (two distinct states with equal fingerprints)
would silently merge genuinely different behaviours and can drop
counterexamples; a fingerprint *split* (one state fingerprinted two
ways) only costs a cache miss.  Canonicalisation is therefore biased
hard toward splitting:

* every recognised value kind canonicalises structurally (dicts and
  sets are sorted, so insertion order never matters);
* scalars carry a type tag, so ``True``/``1`` and ``1``/``1.0`` -- equal
  and hash-equal in Python -- never merge;
* anything *unrecognised* gets a globally-unique opaque token (the
  object is kept alive so ``id`` reuse cannot alias tokens).  Unknown
  values can only ever cause misses, never unsound merges.

The state covered is exactly what a run's outcome can observe: the
per-object :meth:`~repro.memory.base.SharedObject.fingerprint_state`
view (``audit_state`` by default, normalised so lazily materialised
defaults compare equal to absent entries), generator continuations
(code identity, resume offset, locals, ``yield from`` chains), pending
operations, statuses, decisions, inboxes, the global step counter and
deadlock flag, and the plan hooks
(:meth:`~repro.runtime.crash.CrashPlan.fingerprint_state` and friends).
Check callbacks must therefore judge a run only through the
:class:`~repro.runtime.run.RunResult` surface backed by that state
(decisions, statuses, steps, deadlock, audit-visible object state) --
not through observability instrumentation such as ``store.op_count``.
"""

from __future__ import annotations

import dataclasses
from enum import Enum
from types import FunctionType, GeneratorType, MethodType
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

__all__ = ["Fingerprinter"]

#: Canonical tags, interned once (tuple identity helps dict hashing).
_TAG_BOOL = "b"
_TAG_FLOAT = "f"
_TAG_TUPLE = "t"
_TAG_LIST = "l"
_TAG_SET = "s"
_TAG_DICT = "d"
_TAG_DATACLASS = "dc"
_TAG_FUNCTION = "fn"
_TAG_METHOD = "m"
_TAG_GENERATOR = "g"
_TAG_EXCEPTION = "e"
_TAG_SHARED = "so"
_TAG_PROXY = "px"
_TAG_OPAQUE = "?"
_TAG_CYCLE = "cyc"

_ATOMIC = (int, str, bytes, type(None))


def _item_key(item: Tuple[Any, Any]) -> Any:
    """Sort key for dict items: the raw key only (values may not be
    mutually comparable; keys within one dict usually are)."""
    return item[0]


def _atomic_tree(value: Any) -> bool:
    """True iff ``value`` is a tuple tree of value-hashed atoms.

    For such values ``==`` and :meth:`Fingerprinter.canon` distinguish
    exactly the same states (no id-based opaque tokens can hide inside),
    so canonical forms may be memoised by the value itself without any
    risk of an unsound merge."""
    if type(value) is tuple:
        return all(_atomic_tree(v) for v in value)
    return type(value) in (int, str, bool, float, bytes, type(None))


class Fingerprinter:
    """Computes canonical, collision-averse state fingerprints.

    One instance backs one exploration call (its opaque-token table and
    the identity of the tokens it mints are meaningful only within a
    single cache).  Subclass and override :meth:`object_fingerprint` to
    experiment with coarser object views -- the planted mutant
    ``fingerprint-ignore-field`` (:mod:`repro.mutants`) does exactly
    that, and the ``cache`` differential tier exists to catch it.
    """

    def __init__(self) -> None:
        #: id(obj) -> unique opaque token; ``_opaque_refs`` keeps every
        #: tokenised object alive so CPython cannot reuse its id.
        self._opaque: Dict[int, Tuple[str, int]] = {}
        self._opaque_refs: List[Any] = []
        self._runtime_classes: Optional[tuple] = None
        #: (plan qualname, atomic state tree) -> plan fingerprint; plan
        #: trigger states repeat heavily across the exploration tree.
        self._plan_memo: Dict[tuple, tuple] = {}

    # -- canonicalisation ----------------------------------------------
    def canon(self, value: Any, _active: Optional[frozenset] = None) -> Any:
        """Return a hashable canonical form of ``value``.

        Equal canonical forms imply semantically equal values for every
        recognised kind; unrecognised values map to per-object opaque
        tokens (never equal across distinct objects).
        """
        # Exact-type fast paths first: state values are overwhelmingly
        # plain builtins, and the isinstance chain below is hot.
        cls = value.__class__
        if cls is bool:
            return (_TAG_BOOL, value)
        if cls is int or cls is str:
            return value
        if cls is float:
            return (_TAG_FLOAT, value)
        if value is None:
            return None
        if isinstance(value, float):
            return (_TAG_FLOAT, value)
        if isinstance(value, _ATOMIC) or isinstance(value, Enum):
            return value
        vid = id(value)
        active = _active or frozenset()
        if vid in active:
            return (_TAG_CYCLE,)
        active = active | {vid}
        if isinstance(value, tuple):
            return (_TAG_TUPLE,
                    tuple(self.canon(v, active) for v in value))
        if isinstance(value, list):
            return (_TAG_LIST,
                    tuple(self.canon(v, active) for v in value))
        if isinstance(value, (set, frozenset)):
            # Insertion-order insensitivity: sort elements.  Mutually
            # comparable raw elements (the common case) sort directly;
            # mixed kinds fall back to sorting the canonical forms by
            # repr.  Either order is deterministic for a given element
            # set, which is all canonicalisation needs.
            try:
                elems = sorted(value)
            except TypeError:
                return (_TAG_SET, tuple(sorted(
                    (self.canon(v, active) for v in value), key=repr)))
            return (_TAG_SET,
                    tuple(self.canon(v, active) for v in elems))
        if isinstance(value, dict):
            # Same scheme for key order: raw-key sort when comparable
            # (e.g. the all-str keys of ``f_locals``), canonical-repr
            # sort otherwise.  The emitted pairs always carry the
            # *canonical* key, so 1 and True still never merge.
            try:
                items = sorted(value.items(), key=_item_key)
            except TypeError:
                return (_TAG_DICT, tuple(sorted(
                    ((self.canon(k, active), self.canon(v, active))
                     for k, v in value.items()), key=repr)))
            return (_TAG_DICT, tuple(
                (self.canon(k, active), self.canon(v, active))
                for k, v in items))
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            return (_TAG_DATACLASS, type(value).__qualname__, tuple(
                (f.name, self.canon(getattr(value, f.name), active))
                for f in dataclasses.fields(value)))
        if isinstance(value, MethodType):
            return (_TAG_METHOD, id(value.__func__.__code__),
                    self.canon(value.__self__, active))
        if isinstance(value, FunctionType):
            cells = tuple(
                self.canon(self._cell_value(c), active)
                for c in (value.__closure__ or ()))
            return (_TAG_FUNCTION, id(value.__code__),
                    self.canon(value.__defaults__, active), cells)
        if isinstance(value, GeneratorType):
            return (_TAG_GENERATOR, self.continuation(value, active))
        if isinstance(value, BaseException):
            return (_TAG_EXCEPTION, type(value).__qualname__,
                    self.canon(value.args, active))
        shared = self._known_runtime(value, active)
        if shared is not None:
            return shared
        return self._opaque_token(value)

    @staticmethod
    def _cell_value(cell: Any) -> Any:
        try:
            return cell.cell_contents
        except ValueError:  # pragma: no cover - empty cell
            return "<empty-cell>"

    def _known_runtime(self, value: Any,
                       active: frozenset) -> Optional[tuple]:
        """Structural forms for runtime types that appear inside state
        values (shared-object references and store proxies); imported
        lazily -- then cached -- to keep this module dependency-free."""
        classes = self._runtime_classes
        if classes is None:
            from ..memory.base import SharedObject
            from .ops import ObjectProxy
            classes = self._runtime_classes = (SharedObject, ObjectProxy)
        shared_cls, proxy_cls = classes
        if isinstance(value, shared_cls):
            return (_TAG_SHARED, value.name)
        if isinstance(value, proxy_cls):
            return (_TAG_PROXY, value._name)
        return None

    def _opaque_token(self, value: Any) -> Tuple[str, int]:
        token = self._opaque.get(id(value))
        if token is None:
            token = (_TAG_OPAQUE, len(self._opaque_refs))
            self._opaque[id(value)] = token
            self._opaque_refs.append(value)
        return token

    # -- per-component fingerprints ------------------------------------
    def object_fingerprint(self, obj: Any) -> tuple:
        """Canonical form of one shared object's audited state.

        Entries whose value equals the object's
        :meth:`~repro.memory.base.SharedObject.audit_default` are
        dropped, so lazily materialising a default (a snapshot of a
        never-written instance, say) does not change the fingerprint.
        """
        items = []
        for key, value in obj.fingerprint_state().items():
            try:
                default = obj.audit_default(key)
                if value is default or value == default:
                    continue
            except Exception:  # noqa: BLE001 - exotic ==; keep the entry
                pass
            items.append((self.canon(key), self.canon(value)))
        items.sort(key=repr)
        return (type(obj).__qualname__, tuple(items))

    def continuation(self, gen: Any,
                     active: Optional[frozenset] = None) -> tuple:
        """Continuation point of a (possibly delegating) generator:
        code identity + resume offset + canonicalised locals, walking
        the ``yield from`` chain."""
        parts = []
        while gen is not None and hasattr(gen, "gi_code"):
            frame = gen.gi_frame
            if frame is None:
                parts.append(("done", id(gen.gi_code)))
                break
            parts.append((id(gen.gi_code), frame.f_lasti,
                          self.canon(dict(frame.f_locals), active)))
            gen = getattr(gen, "gi_yieldfrom", None)
        return tuple(parts)

    def process_heavy(self, handle: Any) -> tuple:
        """The expensive, rarely-changing part of a process fingerprint:
        status, decision, pending op, the inbox (the last operation's
        result, about to be sent into the generator), and the generator
        continuation.  This part changes only when the process itself
        executes a step (or is crashed / retired by the deadlock
        detector); the incremental driver in :mod:`repro.runtime.dpor`
        reuses the parent state's value for every other process."""
        cont = ()
        if handle.alive and handle.started and handle.generator is not None:
            cont = self.continuation(handle.generator)
        return (handle.status,
                self.canon(handle.decision),
                self.canon(handle.pending),
                self.canon(handle.inbox),
                cont)

    def process_fingerprint(self, handle: Any,
                            track_steps: bool) -> tuple:
        """Canonical form of one process: the heavy part
        (:meth:`process_heavy`) plus the volatile counters -- spin
        verification and, with ``track_steps``, the process's own step
        counter (required whenever a crash/fault plan keys behaviour on
        it)."""
        return self.assemble_process(self.process_heavy(handle), handle,
                                     track_steps)

    @staticmethod
    def assemble_process(heavy: tuple, handle: Any,
                         track_steps: bool) -> tuple:
        """Combine a (possibly reused) heavy part with the volatile
        per-process counters read fresh from ``handle``."""
        return (heavy, handle.spin_failures,
                handle.steps_taken if track_steps else None)

    def plan_fingerprint(self, plan: Any) -> tuple:
        """Canonical form of a crash/fault plan's mutable trigger state.

        Plans expose :meth:`fingerprint_state`; unknown plan types fall
        back to canonicalising their full ``vars()`` (complete, hence
        sound -- at worst every run misses via opaque tokens).
        """
        hook = getattr(plan, "fingerprint_state", None)
        state = hook() if hook is not None else vars(plan)
        if _atomic_tree(state):
            key = (type(plan).__qualname__, state)
            fp = self._plan_memo.get(key)
            if fp is None:
                fp = (key[0], self.canon(state))
                self._plan_memo[key] = fp
            return fp
        return (type(plan).__qualname__, self.canon(state))

    def plan_step_pids(self, plan: Any) -> Optional[FrozenSet[int]]:
        """Pids whose own-step counters the plan's behaviour depends on
        (``None`` = unknown, treat every pid as step-sensitive)."""
        hook = getattr(plan, "fingerprint_step_pids", None)
        return hook() if hook is not None else None

    # -- the whole-system fingerprint ----------------------------------
    def object_parts(self, system: Any) -> Dict[str, tuple]:
        """Per-object fingerprint parts, keyed by object name."""
        return {name: self.object_fingerprint(obj)
                for name, obj in system.store.shared_objects().items()}

    def heavy_parts(self, system: Any) -> Dict[int, tuple]:
        """Per-process heavy fingerprint parts, keyed by pid."""
        return {pid: self.process_heavy(handle)
                for pid, handle in system.handles.items()}

    def assemble(self, system: Any, obj_parts: Dict[str, tuple],
                 heavy: Dict[int, tuple]) -> tuple:
        """Combine per-component parts into the full state fingerprint.

        The volatile pieces -- spin-failure counters, plan trigger
        state, the global step counter, the deadlock flag, and (for
        plan-sensitive pids) per-process step counters -- are read fresh
        from ``system`` on every call; only the heavy parts are supplied
        by the caller (computed fresh or reused incrementally).
        """
        objs = tuple((name, obj_parts[name])
                     for name in sorted(obj_parts))
        plan = system.scheduler.crash_plan
        if plan is None:
            plan_fp = None
            step_pids: Optional[FrozenSet[int]] = frozenset()
        else:
            plan_fp = self.plan_fingerprint(plan)
            step_pids = self.plan_step_pids(plan)
        procs = tuple(
            (pid, self.assemble_process(
                heavy[pid], system.handles[pid],
                step_pids is None or pid in step_pids))
            for pid in sorted(system.handles))
        return (objs, procs, system.scheduler.steps, system.deadlocked,
                plan_fp)

    def fingerprint(self, system: Any) -> tuple:
        """Canonical fingerprint of a live ``_System`` state.

        Covers every input the remainder of a run can depend on: shared
        objects (sorted by name), processes (sorted by pid), the global
        step counter, the exact-deadlock flag, and plan trigger state.
        """
        return self.assemble(system, self.object_parts(system),
                             self.heavy_parts(system))
