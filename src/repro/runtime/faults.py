"""Process-level fault injection beyond clean crashes.

The paper's model (Section 2.3) admits only crash failures, and
:mod:`repro.runtime.crash` injects exactly those.  The related work the
repo tracks (Imbs-Raynal-Stainer, *From Byzantine Failures to Crash
Failures*, PAPERS.md) studies richer fault models that *reduce* to
crashes; this module lets the verification stack exercise them directly:
a :class:`FaultPlan` generalizes :class:`~repro.runtime.crash.CrashPlan`
with per-pid **Byzantine behaviors** that rewrite the *values* a process
writes, proposes, or observes, while keeping crash semantics (and every
trigger predicate :class:`~repro.runtime.crash.CrashPoint` supports)
unchanged.

Behaviors fire on the same triggers crash points use -- the victim's
own-step index, or the k-th operation matching a predicate -- wrapped in
a :class:`FaultTrigger`:

* :class:`CorruptWrite` -- rewrite the arguments of a matching mutating
  invocation (value corruption on write/propose);
* :class:`ArbitraryPropose` -- replace the *last* argument of a matching
  invocation with a fixed arbitrary value (the classic Byzantine
  "proposes whatever it wants");
* :class:`StaleReadReplay` -- once triggered, matching read results are
  replaced with the value the same process observed on its *previous*
  matching read (a stale-replica replay; the first observation is cached
  and then served forever).

Soundness under DPOR: behaviors may only alter argument and result
*values*, never the object, method, or location structure of an
operation, so the footprints the explorer prunes with are preserved
exactly.  All three built-in behaviors obey this by construction;
:meth:`FaultPlan.rewrite_invocation` enforces it and refuses rewritten
invocations that change object or method.

A :class:`FaultPlan` flows through every ``crash_plan`` /
``crash_plan_factory`` parameter in the stack (``Scheduler``,
``explore``, ``explore_dpor``, ``explore_parallel``, scenario
registry): it *is* a ``CrashPlan``, and the scheduler only consults the
rewrite hooks when they exist -- with no plan (or a plain ``CrashPlan``)
installed, execution is bit-for-bit the pre-fault-layer behavior.

Message-level faults (drop/duplicate/delay/reorder) live in
:mod:`repro.messaging.faults`; the registry of planted protocol mutants
that proves this machinery *detects* bugs is :mod:`repro.mutants`.  See
``docs/fault_injection.md`` for the full DSL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .crash import CrashPlan, CrashPoint, op_on
from .ops import Invocation

__all__ = [
    "ArbitraryPropose", "CorruptWrite", "FaultBehavior", "FaultPlan",
    "FaultTrigger", "StaleReadReplay", "byzantine_writer",
]


@dataclass
class FaultTrigger:
    """When a Byzantine behavior becomes active.

    The exact trigger vocabulary of :class:`CrashPoint` -- either the
    victim's 1-based ``own_step`` index, or the ``occurrence``-th
    operation matching ``matching`` -- but *activating* a behavior
    instead of crashing.  ``once=True`` (default) fires the behavior on
    exactly the triggering operation; ``once=False`` keeps it active
    for every later matching operation too (a persistent corruption).
    """

    own_step: Optional[int] = None
    matching: Optional[Callable[[Invocation], bool]] = None
    occurrence: int = 1
    once: bool = True
    _matches_seen: int = field(default=0, repr=False)
    _latched: bool = field(default=False, repr=False)
    _eval_key: Optional[int] = field(default=None, repr=False)
    _eval_hit: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if (self.own_step is None) == (self.matching is None):
            raise ValueError(
                "specify exactly one of own_step / matching")
        if self.own_step is not None and self.own_step < 1:
            raise ValueError("own_step is 1-based and must be >= 1")
        if self.occurrence < 1:
            raise ValueError("occurrence is 1-based and must be >= 1")

    def fires(self, steps_taken: int, inv: Optional[Invocation]) -> bool:
        """Does the behavior apply to the step about to execute?

        Idempotent per step: the scheduler consults both the invocation
        and the result hook with the same ``steps_taken``, so the first
        call evaluates (advancing the match counter, like
        ``CrashPoint``) and the second returns the cached decision.
        :meth:`reset` re-arms everything for the next run.
        """
        if self._eval_key == steps_taken:
            return self._eval_hit
        self._eval_key = steps_taken
        self._eval_hit = self._evaluate(steps_taken, inv)
        return self._eval_hit

    def _evaluate(self, steps_taken: int, inv: Optional[Invocation]) -> bool:
        if self.own_step is not None:
            if self.once:
                return steps_taken + 1 == self.own_step
            return steps_taken + 1 >= self.own_step
        if inv is None or not self.matching(inv):
            return False
        if self._latched:
            return not self.once
        self._matches_seen += 1
        if self._matches_seen == self.occurrence:
            self._latched = True
            return True
        return False

    def reset(self) -> None:
        self._matches_seen = 0
        self._latched = False
        self._eval_key = None
        self._eval_hit = False

    def fingerprint_state(self) -> tuple:
        """Configuration plus every mutable field, for the DPOR state
        fingerprint: trigger states that would fire differently on the
        next step must never compare equal."""
        return (self.own_step, self.matching, self.occurrence, self.once,
                self._matches_seen, self._latched, self._eval_key,
                self._eval_hit)


class FaultBehavior:
    """One Byzantine behavior attached to a victim pid.

    Subclasses override :meth:`rewrite_invocation` (mutate what the
    victim *does*) and/or :meth:`rewrite_result` (mutate what it
    *observes*).  The default implementations are identities.  Value-only
    contract: rewrites must preserve ``inv.obj`` and ``inv.method`` so
    DPOR footprints stay exact (enforced by :class:`FaultPlan`).
    """

    def __init__(self, trigger: FaultTrigger) -> None:
        self.trigger = trigger

    def rewrite_invocation(self, inv: Invocation) -> Invocation:
        return inv

    def rewrite_result(self, pid: int, inv: Invocation, result: Any) -> Any:
        return result

    def reset(self) -> None:
        self.trigger.reset()

    def fingerprint_state(self) -> tuple:
        """Behavior identity plus its complete mutable state (trigger
        counters and, via ``vars``, any subclass state such as
        :class:`StaleReadReplay`'s per-site cache)."""
        extra = {k: v for k, v in vars(self).items() if k != "trigger"}
        return (type(self).__qualname__, self.trigger.fingerprint_state(),
                extra)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.trigger!r})"


class CorruptWrite(FaultBehavior):
    """Rewrite the arguments of a matching mutating invocation.

    ``corrupt`` maps the original args tuple to the corrupted one; the
    default replaces the last argument with ``value``.  Classic use:
    a process that publishes a corrupted value into a snapshot entry.
    """

    def __init__(self, trigger: FaultTrigger,
                 corrupt: Optional[Callable[[Tuple[Any, ...]],
                                            Tuple[Any, ...]]] = None,
                 value: Any = None) -> None:
        super().__init__(trigger)
        if corrupt is None:
            def corrupt(args: Tuple[Any, ...]) -> Tuple[Any, ...]:
                if not args:
                    return args
                return args[:-1] + (value,)
        self.corrupt = corrupt

    def rewrite_invocation(self, inv: Invocation) -> Invocation:
        return Invocation(inv.obj, inv.method, tuple(self.corrupt(inv.args)))


class ArbitraryPropose(FaultBehavior):
    """Replace the last argument of a matching invocation with ``value``.

    The Byzantine "arbitrary-value proposal": the victim invokes the
    protocol correctly but feeds it a value nobody proposed.
    """

    def __init__(self, trigger: FaultTrigger, value: Any) -> None:
        super().__init__(trigger)
        self.value = value

    def rewrite_invocation(self, inv: Invocation) -> Invocation:
        if not inv.args:
            return inv
        return Invocation(inv.obj, inv.method,
                          inv.args[:-1] + (self.value,))


class StaleReadReplay(FaultBehavior):
    """Serve the victim stale results for matching read operations.

    The first matching result after the trigger fires is cached per
    ``(obj, method, args)`` site; every later firing read of the same
    site observes that cached (now stale) value instead of the current
    one -- a replica that stopped applying updates.  Attach with a
    ``once=False`` trigger for the persistent-staleness reading.
    """

    def __init__(self, trigger: FaultTrigger) -> None:
        super().__init__(trigger)
        self._cache: Dict[Tuple[Any, ...], Any] = {}

    def rewrite_result(self, pid: int, inv: Invocation, result: Any) -> Any:
        site = (inv.obj, inv.method, inv.args)
        if site in self._cache:
            return self._cache[site]
        self._cache[site] = result
        return result

    def reset(self) -> None:
        super().reset()
        self._cache.clear()


class FaultPlan(CrashPlan):
    """A composable fault plan: crash points plus Byzantine behaviors.

    Subclasses :class:`CrashPlan`, so it threads through every
    ``crash_plan`` / ``crash_plan_factory`` parameter unchanged; the
    scheduler additionally consults :meth:`rewrite_invocation` /
    :meth:`rewrite_result` on every step of a process that has behaviors
    attached.  ``behaviors`` maps victim pid to a list of
    :class:`FaultBehavior`; behaviors compose in list order.
    """

    def __init__(self,
                 points: Optional[Dict[int, CrashPoint]] = None,
                 behaviors: Optional[Dict[int, List[FaultBehavior]]] = None
                 ) -> None:
        super().__init__(points)
        self.behaviors: Dict[int, List[FaultBehavior]] = {
            pid: list(items) for pid, items in (behaviors or {}).items()}

    @classmethod
    def from_crash_plan(cls, plan: CrashPlan) -> "FaultPlan":
        """Lift an existing crash plan (its points are shared)."""
        return cls(points=plan.points)

    def attach(self, pid: int, behavior: FaultBehavior) -> "FaultPlan":
        """Attach one more behavior to ``pid`` (chainable)."""
        self.behaviors.setdefault(pid, []).append(behavior)
        return self

    @property
    def byzantine_pids(self) -> frozenset:
        return frozenset(self.behaviors)

    def reset(self) -> None:
        super().reset()
        for items in self.behaviors.values():
            for behavior in items:
                behavior.reset()

    # -- state-fingerprint hooks ---------------------------------------
    def fingerprint_state(self) -> tuple:
        """Crash-point state plus per-pid behavior state, sorted."""
        return (super().fingerprint_state(), tuple(sorted(
            (pid, tuple(b.fingerprint_state() for b in items))
            for pid, items in self.behaviors.items())))

    def fingerprint_step_pids(self) -> frozenset:
        """Behavior triggers are consulted with the victim's own step
        counter on every step, so every behavior pid is step-sensitive
        (on top of the crash plan's ``own_step`` victims)."""
        return super().fingerprint_step_pids() | frozenset(self.behaviors)

    # -- scheduler hooks -----------------------------------------------
    def rewrite_invocation(self, pid: int, steps_taken: int,
                           inv: Invocation) -> Invocation:
        """Rewrite the invocation ``pid`` is about to execute.

        Only the *values* may change: a behavior that alters the object
        or method would invalidate the footprint DPOR pruned with, so
        such rewrites are rejected loudly.
        """
        for behavior in self.behaviors.get(pid, ()):
            if behavior.trigger.fires(steps_taken, inv):
                rewritten = behavior.rewrite_invocation(inv)
                if (rewritten.obj != inv.obj
                        or rewritten.method != inv.method):
                    raise ValueError(
                        f"fault behavior {behavior!r} rewrote "
                        f"{inv.obj}.{inv.method} into "
                        f"{rewritten.obj}.{rewritten.method}; behaviors "
                        f"may only alter values (footprint soundness)")
                inv = rewritten
        return inv

    def rewrite_result(self, pid: int, steps_taken: int, inv: Invocation,
                       result: Any) -> Any:
        """Rewrite the result ``pid`` observes from an executed step.

        Consulted with the same ``steps_taken`` as the matching
        :meth:`rewrite_invocation` call; :meth:`FaultTrigger.fires` is
        idempotent per step, so both hooks see one consistent firing
        decision without double-advancing match counters.
        """
        for behavior in self.behaviors.get(pid, ()):
            if behavior.trigger.fires(steps_taken, inv):
                result = behavior.rewrite_result(pid, inv, result)
        return result

    def __repr__(self) -> str:
        return (f"FaultPlan(points={self.points!r}, "
                f"behaviors={self.behaviors!r})")


def byzantine_writer(pid: int, value: Any,
                     obj: Optional[str] = None,
                     method: Optional[str] = None,
                     occurrence: int = 1,
                     once: bool = False) -> FaultPlan:
    """Convenience plan: ``pid`` corrupts matching writes with ``value``.

    With no ``obj``/``method`` every mutating invocation of ``pid``
    matches from the first one on.
    """
    predicate = (op_on(obj, method) if obj is not None
                 else (lambda inv: True))
    trigger = FaultTrigger(matching=predicate, occurrence=occurrence,
                           once=once)
    return FaultPlan().attach(pid, CorruptWrite(trigger, value=value))
