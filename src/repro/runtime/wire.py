"""Frame codec for the network shard protocol: length, version, checksum.

The multi-machine coordinator (:mod:`repro.runtime.netshard`) speaks
the :class:`~repro.runtime.lease.LeaseTable` grant/heartbeat/complete
protocol over TCP.  TCP is a byte stream with none of the message
boundaries the protocol needs, and a distributed transport must treat
the bytes themselves as adversarial (the Imbs-Raynal-Stainer reduction
treats even *processes* that way): a frame can arrive truncated by a
crashed peer, corrupted by a buggy proxy, oversized by a confused or
malicious client, or produced by an incompatible build.  This module
pins the frame format and turns every such event into a **typed,
prompt** failure:

* every frame is ``header + JSON payload``, where the fixed 13-byte
  header carries a magic tag, the protocol version, the payload length
  and a CRC-32 of the payload -- a reader always knows exactly how many
  bytes it is owed and whether they arrived intact;
* every socket read and write takes a **deadline** (absolute
  ``time.monotonic()`` instant, never wall clock): a peer that stops
  mid-frame fails the read with :class:`WireTimeout` instead of
  wedging the server, exactly as a wedged pool worker trips its lease;
* every malformed input raises a dedicated :class:`WireError` subclass
  (:class:`FrameTruncated`, :class:`ChecksumMismatch`,
  :class:`FrameTooLarge`, :class:`VersionMismatch`, ...), so transport
  code retries what is retryable and surfaces what is not.

``tests/runtime/test_wire.py`` pins each failure mode; the chaos proxy
(:class:`repro.runtime.netshard.ChaosProxy`) manufactures them on live
connections.
"""

from __future__ import annotations

import json
import socket
import struct
import zlib
from time import monotonic
from typing import Any, Dict, List, Optional, Tuple

#: Protocol version carried in every frame header.  Bump on any change
#: to the header layout or the message vocabulary; a peer speaking a
#: different version is rejected with :class:`VersionMismatch` instead
#: of being misparsed.
WIRE_VERSION = 1

#: Frame tag: four bytes identifying a repro-shard frame.  Anything
#: else at a frame boundary (an HTTP probe, a desynchronized stream)
#: raises :class:`BadMagic` immediately.
MAGIC = b"RSRD"

#: Hard cap on a single frame's payload.  Shard prefixes, stats and
#: counters are all tiny; a length field beyond this is corruption or
#: abuse, and rejecting it *before* reading the payload keeps a hostile
#: length from making the reader allocate or wait for gigabytes.
#: Module-level so tests can shrink it.
MAX_FRAME_BYTES = 4 * 1024 * 1024

#: Default per-frame I/O budget (seconds) when the caller passes no
#: deadline.  Generous against real network jitter, finite against a
#: peer that stops mid-frame.  Module-level so tests can shrink it.
DEFAULT_FRAME_TIMEOUT = 30.0

#: ``!`` = network byte order, no padding: magic, version byte,
#: payload length, CRC-32 of the payload.
_HEADER = struct.Struct("!4sBII")

#: Total header size in bytes (13).
HEADER_SIZE = _HEADER.size


class WireError(Exception):
    """Base of every transport-layer failure.

    Catching this (plus ``OSError``) is the contract for "the frame or
    connection is unusable; reconnect or give up" -- no transport
    failure ever escapes as a bare ``ValueError`` or a hang.
    """


class FrameTruncated(WireError):
    """The stream ended (or reset) inside a frame.

    Covers a truncated length prefix -- EOF after 1-12 header bytes --
    as well as EOF inside the payload: in both cases the peer promised
    bytes it never delivered.
    """


class ConnectionClosed(WireError):
    """The peer closed the connection cleanly *between* frames.

    Unlike :class:`FrameTruncated` this is often benign (a server
    finishing, a worker departing); callers decide.
    """


class ChecksumMismatch(WireError):
    """The payload arrived, but its CRC-32 disagrees with the header."""


class FrameTooLarge(WireError):
    """The header announces a payload beyond :data:`MAX_FRAME_BYTES`."""


class VersionMismatch(WireError):
    """The peer speaks a different protocol version."""


class BadMagic(WireError):
    """The bytes at a frame boundary are not a repro-shard frame."""


class WireTimeout(WireError):
    """A read or write deadline expired mid-frame (peer too slow)."""


def encode_frame(body: Dict[str, Any]) -> bytes:
    """Serialize one message to ``header + JSON payload`` bytes.

    Keys are sorted so identical messages are byte-identical (the chaos
    proxy and the tests rely on frames being reproducible).  Raises
    :class:`FrameTooLarge` rather than emitting a frame no compliant
    reader would accept.
    """
    payload = json.dumps(body, sort_keys=True).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameTooLarge(
            f"refusing to encode a {len(payload)}-byte payload "
            f"(cap {MAX_FRAME_BYTES})")
    header = _HEADER.pack(MAGIC, WIRE_VERSION, len(payload),
                          zlib.crc32(payload))
    return header + payload


def _parse_header(header: bytes) -> Tuple[int, int]:
    """Validate a 13-byte header; returns ``(payload_length, crc)``."""
    magic, version, length, crc = _HEADER.unpack(header)
    if magic != MAGIC:
        raise BadMagic(f"expected frame magic {MAGIC!r}, got {magic!r}")
    if version != WIRE_VERSION:
        raise VersionMismatch(
            f"peer speaks wire version {version}, this build speaks "
            f"{WIRE_VERSION}")
    if length > MAX_FRAME_BYTES:
        raise FrameTooLarge(
            f"header announces a {length}-byte payload "
            f"(cap {MAX_FRAME_BYTES})")
    return length, crc


def _decode_payload(payload: bytes, crc: int) -> Dict[str, Any]:
    """Checksum-verify and JSON-decode one payload."""
    if zlib.crc32(payload) != crc:
        raise ChecksumMismatch(
            f"payload CRC {zlib.crc32(payload):#010x} != header CRC "
            f"{crc:#010x}")
    try:
        body = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        # The checksum passed, so the bytes arrived as sent: the peer
        # itself emitted garbage.  Not retryable.
        raise WireError(f"undecodable frame payload: {exc}") from None
    if not isinstance(body, dict):
        raise WireError(
            f"frame payload must be a JSON object, got "
            f"{type(body).__name__}")
    return body


def try_decode(buffer: bytes) -> Optional[Tuple[Dict[str, Any], int]]:
    """Decode one frame from the head of ``buffer`` if fully present.

    Returns ``(body, bytes_consumed)``, or ``None`` when the buffer
    holds only a frame prefix (caller: read more).  Raises the typed
    :class:`WireError` subclasses on malformed input.  This is the
    non-blocking half of the codec, used by the selector-driven server
    on its per-connection receive buffers.
    """
    if len(buffer) < HEADER_SIZE:
        return None
    length, crc = _parse_header(bytes(buffer[:HEADER_SIZE]))
    if len(buffer) < HEADER_SIZE + length:
        return None
    payload = bytes(buffer[HEADER_SIZE:HEADER_SIZE + length])
    return _decode_payload(payload, crc), HEADER_SIZE + length


def split_frames(buffer: bytes) -> Tuple[List[bytes], bytes]:
    """Split ``buffer`` into complete raw frames plus the unfinished rest.

    Frame-*boundary* aware but content-agnostic: payloads are not
    checksummed or decoded, so the chaos proxy can reorder, duplicate
    or truncate frames it could never legitimately parse.  A buffer
    that does not start with a valid header is returned whole as the
    remainder (pass-through for non-protocol bytes).
    """
    frames: List[bytes] = []
    rest = bytes(buffer)
    while len(rest) >= HEADER_SIZE:
        try:
            length, _ = _parse_header(rest[:HEADER_SIZE])
        except WireError:
            break
        if len(rest) < HEADER_SIZE + length:
            break
        frames.append(rest[:HEADER_SIZE + length])
        rest = rest[HEADER_SIZE + length:]
    return frames, rest


def _remaining(deadline: Optional[float]) -> float:
    """Seconds left until ``deadline`` (monotonic); raises on expiry."""
    if deadline is None:
        return DEFAULT_FRAME_TIMEOUT
    remaining = deadline - monotonic()
    if remaining <= 0:
        raise WireTimeout("frame deadline expired")
    return remaining


def _recv_exact(sock: socket.socket, nbytes: int,
                deadline: Optional[float],
                eof_ok_at_start: bool = False) -> Optional[bytes]:
    """Read exactly ``nbytes``, honouring the deadline on every recv.

    Returns ``None`` on a clean EOF before the first byte when
    ``eof_ok_at_start`` (a peer hanging up between frames); raises
    :class:`FrameTruncated` on EOF or reset anywhere else, and
    :class:`WireTimeout` when the deadline fires mid-read -- a read
    can therefore never hang past its budget.
    """
    chunks: List[bytes] = []
    got = 0
    while got < nbytes:
        sock.settimeout(_remaining(deadline))
        try:
            chunk = sock.recv(min(65536, nbytes - got))
        except socket.timeout:
            raise WireTimeout(
                f"read stalled with {nbytes - got} of {nbytes} "
                f"byte(s) outstanding") from None
        except OSError as exc:
            raise FrameTruncated(
                f"connection lost mid-frame: {exc}") from None
        if not chunk:
            if not chunks and eof_ok_at_start:
                return None
            raise FrameTruncated(
                f"peer closed with {nbytes - got} of {nbytes} "
                f"byte(s) outstanding")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket,
               deadline: Optional[float] = None) -> Dict[str, Any]:
    """Read one complete frame from ``sock``; blocks at most until
    ``deadline`` (absolute monotonic; ``None`` = the module default).

    Raises :class:`ConnectionClosed` on a clean EOF at a frame
    boundary, and the usual typed errors otherwise.
    """
    header = _recv_exact(sock, HEADER_SIZE, deadline, eof_ok_at_start=True)
    if header is None:
        raise ConnectionClosed("peer closed between frames")
    length, crc = _parse_header(header)
    payload = _recv_exact(sock, length, deadline) if length else b""
    assert payload is not None
    return _decode_payload(payload, crc)


def send_frame(sock: socket.socket, body: Dict[str, Any],
               deadline: Optional[float] = None) -> None:
    """Encode and write one frame; blocks at most until ``deadline``."""
    data = encode_frame(body)
    sock.settimeout(_remaining(deadline))
    try:
        sock.sendall(data)
    except socket.timeout:
        raise WireTimeout(
            f"write of a {len(data)}-byte frame stalled") from None
    except OSError as exc:
        raise ConnectionClosed(
            f"connection lost while writing: {exc}") from None
