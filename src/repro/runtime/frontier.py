"""On-disk frontier store: the durable work queue behind ``--resume``.

:func:`repro.runtime.parallel.explore_parallel` splits a schedule tree
at a frontier of picklable ``(prefix, sleep-set)`` shards.  This module
persists that frontier so an exploration killed at *any* point -- power
loss included -- can continue instead of restarting: the store is a
single JSON-lines file holding

* a **header** line fixing the run (config fingerprint, the expansion
  phase's statistics and counters, the full shard list, and any
  completions folded in by compaction), written atomically *and
  durably* via :func:`repro.analysis.metrics.atomic_write_text`;
* an append-only **journal** of shard grants and completions, each
  line fsynced before the coordinator acts on it, so the journal never
  claims less than what reached the disk.

Soundness rests on two facts.  Shards are deterministic -- re-running
one yields bit-for-bit the same ``ExplorationStats`` -- so a completion
lost to a torn tail merely costs a re-execution, never a wrong answer.
And :meth:`ExplorationStats.merge` is commutative and associative, so
folding journaled completions (from a previous life of the run) with
freshly computed ones, in any order, equals the uninterrupted merge.

A resumed store validates its header fingerprint against the resuming
run's configuration, mirroring the seed validation of ``sweep
--resume``: continuing an exploration under different parameters would
silently merge statistics from two different state spaces.

See ``docs/resumable_exploration.md`` for the file format and the
recovery walk-through.
"""

from __future__ import annotations

import json
import os
import signal
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .explore import ExplorationStats, ShardViolation

# The durable-write primitives live in repro.analysis.metrics, which
# the runtime package must not import at module level (analysis imports
# the runtime; see the note in metrics.py).  Deferred to call time,
# when both packages are fully initialized.


def _durability():
    from ..analysis.metrics import (METRICS_SCHEMA_VERSION,
                                    atomic_write_text, fsync_directory)
    return METRICS_SCHEMA_VERSION, atomic_write_text, fsync_directory

#: Bump on any change to the header/journal line shapes.
FRONTIER_SCHEMA_VERSION = 1

#: Completions between compactions.  Compaction folds the journal into
#: a fresh header (atomic rewrite), bounding both file size and resume
#: replay cost; between compactions the journal grows by one small line
#: per grant/completion.
COMPACT_INTERVAL = 64

#: Test hook (see tests/properties/test_resume_differential.py): when
#: this environment variable is set to an integer k, the store SIGKILLs
#: its own process after the header write (k == 0) or after the k-th
#: journaled completion (k > 0) -- simulating a coordinator crash at a
#: chosen point with zero cooperation from the code under test.
KILL_AFTER_ENV = "REPRO_FRONTIER_KILL_AFTER"


class FrontierMismatch(RuntimeError):
    """A resume was attempted against a store from a different run.

    Carries the offending keys so the CLI can print exactly which
    parameters differ (the same contract as the ``sweep --resume`` seed
    check).
    """

    def __init__(self, mismatched: Dict[str, Tuple[Any, Any]]) -> None:
        self.mismatched = dict(mismatched)
        details = ", ".join(
            f"{key}: stored {stored!r} != requested {requested!r}"
            for key, (stored, requested) in sorted(mismatched.items()))
        super().__init__(f"frontier store fingerprint mismatch ({details})")


def stats_to_dict(stats: ExplorationStats) -> Dict[str, Any]:
    """JSON-encode an :class:`ExplorationStats` (violation included)."""
    violation = None
    if stats.violation is not None:
        violation = {
            "order_key": list(stats.violation.order_key),
            "schedule": list(stats.violation.schedule),
            "message": stats.violation.message,
            "error_type": stats.violation.error_type,
        }
    return {
        "complete_runs": stats.complete_runs,
        "truncated_runs": stats.truncated_runs,
        "max_depth_seen": stats.max_depth_seen,
        "pruned_runs": stats.pruned_runs,
        "violation": violation,
    }


def stats_from_dict(data: Dict[str, Any]) -> ExplorationStats:
    """Inverse of :func:`stats_to_dict`; round-trips to equal stats.

    Sequence fields come back as tuples so a decoded
    :class:`ShardViolation` compares equal to the original dataclass
    (lists would break the bit-for-bit resume differential).
    """
    violation = None
    raw = data.get("violation")
    if raw is not None:
        violation = ShardViolation(
            order_key=tuple(raw["order_key"]),
            schedule=tuple(raw["schedule"]),
            message=raw["message"],
            error_type=raw.get("error_type", "AssertionError"))
    return ExplorationStats(
        complete_runs=data["complete_runs"],
        truncated_runs=data["truncated_runs"],
        max_depth_seen=data["max_depth_seen"],
        pruned_runs=data["pruned_runs"],
        violation=violation)


def _encode_shards(shards: Sequence[Tuple[Sequence[int], Sequence[int]]]
                   ) -> List[List[List[int]]]:
    return [[list(prefix), list(sleep)] for prefix, sleep in shards]


def _decode_shards(raw: Sequence[Sequence[Sequence[int]]]
                   ) -> List[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
    return [(tuple(prefix), tuple(sleep)) for prefix, sleep in raw]


class FrontierStore:
    """Durable grant/completion journal for one sharded exploration.

    Lifecycle::

        store = FrontierStore(path)
        if store.exists():
            store.load()                      # replay header + journal
            store.validate(fingerprint)       # same run?
        else:
            store.begin(fingerprint, stats, counters, shards)
        for idx in store.pending_indices(len(store.shards)):
            ...                               # execute shard idx
            store.record_completion(idx, shard_stats, shard_counters)
        store.close()

    Every completion append is fsynced before :meth:`record_completion`
    returns, so the on-disk journal is always at or behind the
    coordinator's in-memory truth -- a crash can lose the *latest*
    completions (they re-execute on resume) but can never invent one.
    A torn final line (crash mid-append) is detected by the JSON parse
    and discarded on load.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.fingerprint: Optional[Dict[str, Any]] = None
        self.expansion_stats: Optional[ExplorationStats] = None
        self.expansion_counters: Dict[str, Any] = {}
        self.shards: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = []
        #: shard index -> (stats, counters) for every journaled
        #: completion, deduplicated (first completion wins, as in the
        #: pool's ``settle``; duplicates are byte-identical anyway).
        self.completed: Dict[int, Tuple[ExplorationStats,
                                        Dict[str, Any]]] = {}
        self._append_handle = None
        self._since_compaction = 0
        raw_kill = os.environ.get(KILL_AFTER_ENV)
        self._kill_after: Optional[int] = (int(raw_kill)
                                           if raw_kill is not None else None)
        self._completions_journaled = 0

    # -- lifecycle ------------------------------------------------------

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def begin(self, fingerprint: Dict[str, Any],
              expansion_stats: ExplorationStats,
              expansion_counters: Dict[str, Any],
              shards: Sequence[Tuple[Sequence[int], Sequence[int]]]) -> None:
        """Start a fresh store: durable header, empty journal."""
        self.fingerprint = dict(fingerprint)
        self.expansion_stats = expansion_stats
        self.expansion_counters = dict(expansion_counters)
        self.shards = _decode_shards(_encode_shards(shards))
        self.completed = {}
        self._write_header()
        self._maybe_kill(after_header=True)
        self._open_journal()

    def load(self) -> None:
        """Replay the store from disk: header, then surviving journal.

        Journal ``grant`` lines are informational (a grant without a
        completion means the shard is pending again); only ``complete``
        lines change what resume re-executes.  Parsing stops at the
        first torn line -- everything after a mid-append crash point is
        unreadable by construction (appends are sequential).
        """
        with open(self.path, "r") as handle:
            lines = handle.read().splitlines()
        if not lines:
            raise ValueError(f"frontier store {self.path} is empty")
        header = json.loads(lines[0])
        if header.get("kind") != "frontier_header":
            raise ValueError(
                f"frontier store {self.path} has no header "
                f"(found kind={header.get('kind')!r})")
        if header.get("frontier_schema") != FRONTIER_SCHEMA_VERSION:
            raise ValueError(
                f"frontier store {self.path} has schema "
                f"{header.get('frontier_schema')!r}, expected "
                f"{FRONTIER_SCHEMA_VERSION}")
        self.fingerprint = header["fingerprint"]
        self.expansion_stats = stats_from_dict(header["expansion"])
        self.expansion_counters = dict(header["expansion_counters"])
        self.shards = _decode_shards(header["shards"])
        self.completed = {
            int(idx): (stats_from_dict(entry["stats"]),
                       dict(entry["counters"]))
            for idx, entry in header.get("completed", {}).items()}
        for line in lines[1:]:
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break  # torn tail: crash mid-append, discard the rest
            if record.get("kind") != "complete":
                continue
            idx = record["shard"]
            if idx not in self.completed:
                self.completed[idx] = (stats_from_dict(record["stats"]),
                                       dict(record["counters"]))
        self._since_compaction = sum(
            1 for line in lines[1:] if line.strip())

    def validate(self, fingerprint: Dict[str, Any]) -> None:
        """Reject a resume whose configuration differs from the header.

        Compares key-by-key (both directions) so the error names every
        differing parameter, not just the first.
        """
        stored = self.fingerprint or {}
        mismatched = {
            key: (stored.get(key), fingerprint.get(key))
            for key in set(stored) | set(fingerprint)
            if stored.get(key) != fingerprint.get(key)}
        if mismatched:
            raise FrontierMismatch(mismatched)

    def close(self) -> None:
        if self._append_handle is not None:
            self._append_handle.close()
            self._append_handle = None

    # -- work-queue interface -------------------------------------------

    def pending_indices(self, total: int) -> List[int]:
        """Shard indices not yet journaled complete, in shard order.

        A method (not an expression at the call site) so the planted
        ``resume-drop-completed-shard`` mutant can override it -- the
        bug it models is precisely "resume re-grants a shard the
        journal already settled".
        """
        return [idx for idx in range(total) if idx not in self.completed]

    def record_grant(self, shard: int, worker: int) -> None:
        """Journal a lease grant (observability; not replayed on load)."""
        self._append({"kind": "grant", "shard": shard, "worker": worker})

    def record_completion(self, shard: int, stats: ExplorationStats,
                          counters: Dict[str, Any]) -> None:
        """Durably journal one shard's result; idempotent per shard."""
        if shard in self.completed:
            return  # late duplicate from a re-granted lease
        self.completed[shard] = (stats, dict(counters))
        self._append({"kind": "complete", "shard": shard,
                      "stats": stats_to_dict(stats),
                      "counters": dict(counters)})
        self._completions_journaled += 1
        self._maybe_kill(after_header=False)
        if self._since_compaction >= COMPACT_INTERVAL:
            self.compact()

    def merged_completed_stats(self) -> ExplorationStats:
        """Fold all journaled completions, in shard order."""
        merged = ExplorationStats()
        for idx in sorted(self.completed):
            merged = merged.merge(self.completed[idx][0])
        return merged

    def compact(self) -> None:
        """Fold the journal into a fresh header (atomic rewrite).

        The rewritten file is equivalent to the old header + journal;
        the append handle is reopened on the new inode (``os.replace``
        leaves the old handle pointing at the unlinked file).
        """
        self.close()
        self._write_header()
        self._open_journal()

    # -- internals ------------------------------------------------------

    def _write_header(self) -> None:
        assert self.expansion_stats is not None
        schema_version, atomic_write_text, _ = _durability()
        header = {
            "kind": "frontier_header",
            "schema_version": schema_version,
            "frontier_schema": FRONTIER_SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "expansion": stats_to_dict(self.expansion_stats),
            "expansion_counters": self.expansion_counters,
            "shards": _encode_shards(self.shards),
            "completed": {
                str(idx): {"stats": stats_to_dict(stats),
                           "counters": counters}
                for idx, (stats, counters) in sorted(self.completed.items())},
        }
        atomic_write_text(self.path, json.dumps(header) + "\n", durable=True)
        self._since_compaction = 0

    def _open_journal(self) -> None:
        self._append_handle = open(self.path, "a")

    def _append(self, record: Dict[str, Any]) -> None:
        if self._append_handle is None:
            self._open_journal()
        self._append_handle.write(json.dumps(record) + "\n")
        self._append_handle.flush()
        os.fsync(self._append_handle.fileno())
        self._since_compaction += 1

    def _maybe_kill(self, after_header: bool) -> None:
        if self._kill_after is None:
            return
        if after_header:
            should_die = self._kill_after == 0
        else:
            should_die = 0 < self._kill_after <= self._completions_journaled
        if should_die:
            # Make sure the directory entry for a just-begun store is
            # itself durable before dying, then die exactly as a host
            # crash would: no cleanup, no atexit, no teardown.
            _, _, fsync_directory = _durability()
            fsync_directory(os.path.dirname(os.path.abspath(self.path)))
            os.kill(os.getpid(), signal.SIGKILL)
