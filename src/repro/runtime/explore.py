"""Exhaustive schedule exploration (bounded model checking).

Sampling schedules with seeded adversaries catches most interleaving
bugs; *exhausting* them proves their absence for small configurations.
:func:`explore` enumerates every schedule of a (re-buildable) system by
depth-first search over the enabled set, replaying each prefix from
scratch -- objects and generators are cheap to rebuild, which keeps the
explorer stateless and trivially correct.

Used by the test suite to verify, over ALL interleavings of 2-3 process
systems (and per crash plan):

* safe-agreement / x-safe-agreement agreement + validity,
* adopt-commit coherence,
* splitter invariants,
* queue-based 2-consensus.

Busy-waiting configurations have unbounded schedules; ``max_steps``
bounds the depth (safety violations, if any, show up in finite
prefixes -- this is bounded model checking, and the bound is reported).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Any, Callable, Dict, Generator, List, Optional,
                    Sequence, Tuple, Union)

from time import monotonic

from .adversary import Adversary
from .crash import CrashPlan
from .process import ProcessHandle
from .run import RunResult
from .scheduler import Scheduler
from .trace import Trace


class ExplorationInterrupted(RuntimeError):
    """Exploration stopped cleanly at an explicit budget boundary.

    Raised when the run-count budget (``max_runs``) or the wall-clock
    budget (``timeout``) is exhausted before the schedule tree is done.
    Carries the partial :attr:`stats` accumulated up to the interruption
    and a machine-readable :attr:`reason` (``"max_runs"`` or
    ``"timeout"``), so callers can emit a partial metrics record (the
    CLI maps this to exit code 3 and an ``ExplorationMetrics`` record
    flagged ``"partial": true``).  Subclasses ``RuntimeError``: existing
    budget-error expectations -- including ``pytest.raises(RuntimeError,
    match="max_runs")`` -- keep working unchanged.
    """

    def __init__(self, reason: str, message: str,
                 stats: Optional["ExplorationStats"] = None) -> None:
        self.reason = reason
        self.stats = stats
        super().__init__(message)


def _max_runs_interrupt(max_runs: int,
                        stats: "ExplorationStats"
                        ) -> ExplorationInterrupted:
    return ExplorationInterrupted(
        "max_runs",
        f"exploration exceeded max_runs={max_runs}; "
        f"shrink the configuration ({stats})",
        stats)


def _timeout_interrupt(stats: "ExplorationStats"
                       ) -> ExplorationInterrupted:
    return ExplorationInterrupted(
        "timeout",
        f"exploration exceeded its wall-clock timeout; "
        f"partial coverage: {stats}",
        stats)


def _past_deadline(deadline: Optional[float]) -> bool:
    return deadline is not None and monotonic() >= deadline


@dataclass(frozen=True)
class ShardViolation:
    """The first property failure observed inside one exploration shard.

    Shards are identified by the frontier prefix they explore from
    (``order_key``); merging statistics from many shards keeps the
    violation whose shard prefix sorts first lexicographically, which is
    the violation a serial walk of the shards in prefix order would have
    found first -- independent of worker timing.  ``schedule`` is the
    full failing schedule from the root (frontier prefix included), fit
    for :func:`repro.runtime.dpor.replay_schedule` and ddmin shrinking.
    """

    order_key: Tuple[int, ...]
    schedule: Tuple[int, ...]
    message: str
    error_type: str = "AssertionError"


@dataclass
class ExplorationStats:
    """What the explorer covered.

    ``pruned_runs`` is only nonzero under partial-order reduction
    (``reduction="dpor"``): a lower bound on the schedules proven
    redundant and skipped (each unexplored branch roots a whole subtree,
    so the true saving is at least this large).

    ``violation`` is only set by shard-mode exploration (see
    :mod:`repro.runtime.parallel`), where property failures are
    *collected* rather than raised so that every shard finishes and the
    merged statistics stay deterministic; the serial engines raise
    immediately instead.
    """

    complete_runs: int = 0
    truncated_runs: int = 0
    max_depth_seen: int = 0
    pruned_runs: int = 0
    violation: Optional[ShardViolation] = None

    @property
    def total_runs(self) -> int:
        return self.complete_runs + self.truncated_runs

    def merge(self, other: "ExplorationStats") -> "ExplorationStats":
        """Deterministically combine the statistics of two shards.

        Run counts add, the depth watermark takes the max, and when both
        sides carry a violation the one whose shard prefix sorts first
        (lexicographic ``order_key``) wins -- so folding any number of
        shard results in *any* order yields the same merged outcome as
        exploring the shards serially in prefix order.  Neither operand
        is mutated.
        """
        if self.violation is None:
            violation = other.violation
        elif (other.violation is None
              or self.violation.order_key <= other.violation.order_key):
            violation = self.violation
        else:
            violation = other.violation
        return ExplorationStats(
            complete_runs=self.complete_runs + other.complete_runs,
            truncated_runs=self.truncated_runs + other.truncated_runs,
            max_depth_seen=max(self.max_depth_seen, other.max_depth_seen),
            pruned_runs=self.pruned_runs + other.pruned_runs,
            violation=violation,
        )

    def deterministic_view(self) -> Tuple[bool, Optional["ShardViolation"]]:
        """The cache-independent projection of these statistics.

        The DPOR state cache (:mod:`repro.runtime.dpor`) guarantees
        *observational* equivalence, not count equivalence: a cache hit
        whose entry was recorded under a strictly smaller sleep set
        folds run counts for schedules a cache-off walk would have
        sleep-pruned, so raw counts may differ between cache-on and
        cache-off.  What can never differ is whether a violation was
        found and which violation it is (first in DFS order).  The
        differential test tier compares this projection; the raw counts
        are additionally compared on exact-match-only workloads.
        """
        return (self.violation is not None, self.violation)

    @property
    def reduction_ratio(self) -> float:
        """Explored fraction of (explored + provably pruned) branches.

        1.0 means no reduction; smaller is better.  This is an *upper
        bound* on the true explored fraction, because ``pruned_runs``
        undercounts the schedules each pruned branch stood for.
        """
        denominator = self.total_runs + self.pruned_runs
        if denominator == 0:
            return 1.0
        return self.total_runs / denominator

    def __str__(self) -> str:
        text = (f"{self.complete_runs} complete + "
                f"{self.truncated_runs} truncated runs, "
                f"max depth {self.max_depth_seen}")
        if self.pruned_runs:
            text += (f", {self.pruned_runs} pruned branches "
                     f"(reduction ratio <= {self.reduction_ratio:.3f})")
        return text


class _Replay(Adversary):
    """Plays a fixed prefix; raises if asked beyond it."""

    def __init__(self, prefix: List[int]) -> None:
        self.prefix = prefix
        self.cursor = 0

    def pick(self, enabled, step):
        choice = self.prefix[self.cursor]
        self.cursor += 1
        if choice not in enabled:
            raise AssertionError(
                f"replay divergence: {choice} not enabled at step "
                f"{step} (enabled: {enabled})")
        return choice

    def reset(self) -> None:
        self.cursor = 0


def _run_prefix(build: Callable[[], Tuple[Dict[int, Generator], Any]],
                prefix: List[int],
                crash_plan_factory: Optional[Callable[[], CrashPlan]],
                max_steps: int):
    """Replay ``prefix``; returns (result_or_None, enabled_after).

    result is a RunResult when the system reached a terminal state
    (including detected deadlock) during or exactly at the end of the
    prefix; otherwise None and the enabled set for extension.
    """
    programs, store = build()
    handles = {pid: ProcessHandle(pid, gen)
               for pid, gen in programs.items()}
    scheduler = Scheduler(
        handles=handles,
        store=store,
        adversary=_Replay(prefix),
        crash_plan=(crash_plan_factory() if crash_plan_factory else None),
        trace=Trace(enabled=False),
        max_steps=max_steps,
    )
    # Drive manually: one pick per prefix entry.
    for _ in range(len(prefix)):
        enabled = scheduler._enabled()
        if not enabled:
            break
        scheduler._step(handles[scheduler.adversary.pick(
            enabled, scheduler.steps)])
    enabled = scheduler._enabled()
    # Extension candidates with exact stutter pruning: a process whose
    # pending single-condition spin already failed since the last
    # state-changing step (spin_failures > 0, reset by the scheduler on
    # every mutating step) would deterministically fail again -- the
    # store cannot have changed -- so re-scheduling it is a stutter and
    # every schedule containing it is equivalent to one without.
    from .ops import SpinOp
    candidates = [pid for pid in enabled
                  if not (isinstance(handles[pid].pending, SpinOp)
                          and handles[pid].pending.period == 1
                          and handles[pid].spin_failures > 0)]
    deadlocked = bool(enabled) and not candidates
    if deadlocked:
        # every enabled process is spinning on a provably-false
        # condition: permanent deadlock, exactly detected.
        for pid in enabled:
            handles[pid].mark_blocked()
        enabled = []
    if not enabled:
        decisions = {pid: h.decision for pid, h in handles.items()
                     if h.decided}
        result = RunResult(
            statuses={pid: h.status for pid, h in handles.items()},
            decisions=decisions,
            steps=scheduler.steps,
            deadlocked=deadlocked,
            out_of_steps=False,
            trace=None,
            store=store,
        )
        return result, []
    return None, sorted(candidates)


def _explore_naive(build: Callable[[], Tuple[Dict[int, Generator], Any]],
                   check: Callable[[RunResult], None],
                   crash_plan_factory: Optional[Callable[[], CrashPlan]],
                   max_steps: int,
                   max_runs: int,
                   root: Sequence[int] = (),
                   collect: bool = False,
                   counters: Optional[Dict[str, Any]] = None,
                   deadline: Optional[float] = None
                   ) -> ExplorationStats:
    """Naive DFS over all schedules extending ``root``.

    With ``collect=True`` (shard mode) the first check failure is
    recorded as ``stats.violation`` and the walk stops there instead of
    raising, so the coordinator can merge shard outcomes
    deterministically.  ``counters`` is an optional plain-dict metrics
    channel (see :mod:`repro.analysis.metrics`); the naive walk reports
    only its open-node watermark (``peak_frontier``), and never touches
    ``ExplorationStats`` -- exploration statistics stay bit-for-bit
    identical whether or not metrics are collected.
    """
    stats = ExplorationStats()
    stack: List[List[int]] = [list(root)]
    while stack:
        if counters is not None and len(stack) > counters.get(
                "peak_frontier", 0):
            counters["peak_frontier"] = len(stack)
        if stats.total_runs >= max_runs:
            # Inclusive budget: the stack is non-empty, so at least one
            # more run would be needed to finish the exploration.
            raise _max_runs_interrupt(max_runs, stats)
        if _past_deadline(deadline):
            raise _timeout_interrupt(stats)
        prefix = stack.pop()
        stats.max_depth_seen = max(stats.max_depth_seen, len(prefix))
        result, enabled = _run_prefix(build, prefix,
                                      crash_plan_factory, max_steps)
        if result is not None:
            stats.complete_runs += 1
            if collect:
                try:
                    check(result)
                except Exception as exc:
                    stats.violation = ShardViolation(
                        order_key=tuple(root),
                        schedule=tuple(prefix),
                        message=f"{type(exc).__name__}: {exc}",
                        error_type=type(exc).__name__)
                    return stats
            else:
                check(result)
        elif len(prefix) >= max_steps:
            stats.truncated_runs += 1
        else:
            for pid in reversed(enabled):
                stack.append(prefix + [pid])
    return stats


def explore(build: Callable[[], Tuple[Dict[int, Generator], Any]],
            check: Callable[[RunResult], None],
            crash_plan_factory: Optional[Callable[[], CrashPlan]] = None,
            max_steps: int = 24,
            max_runs: int = 200_000,
            reduction: str = "naive",
            jobs: Optional[Union[int, str]] = None,
            prefix_factor: Optional[int] = None,
            metrics: Optional[Any] = None,
            timeout: Optional[float] = None,
            state_cache: bool = True,
            frontier: Optional[Any] = None) -> ExplorationStats:
    """Exhaustively check every schedule of the system built by ``build``.

    ``build()`` must return a fresh ``(programs, store)`` pair each call
    (generators are single-use).  ``check(result)`` is invoked on every
    complete run and should assert the safety property under test.
    Prefixes longer than ``max_steps`` are counted as truncated (bounded
    exploration).  The ``max_runs`` budget is inclusive: exactly
    ``max_runs`` runs may execute; needing even one more raises
    ``RuntimeError`` -- shrink the configuration instead of silently
    sampling.

    ``reduction`` selects the engine:

    * ``"naive"`` -- enumerate every interleaving by stateless prefix
      replay (the historical behaviour; O(branching^depth)).
    * ``"dpor"`` -- dynamic partial-order reduction
      (:func:`repro.runtime.dpor.explore_dpor`): one representative per
      class of schedules equivalent up to commuting independent steps.
      Same terminal states, far fewer runs; property failures are shrunk
      to a minimal replayable counterexample.

    ``jobs`` selects the execution backend.  ``None`` (the default)
    keeps the classic single-process engine.  Any explicit value --
    ``1``, ``4``, ``"auto"`` -- switches to sharded exploration
    (:func:`repro.runtime.parallel.explore_parallel`): the schedule tree
    is split at a frontier of prefixes and the shards are explored by a
    worker pool.  Which shards exist depends only on ``prefix_factor``,
    never on ``jobs``, so run counts and counterexamples are identical
    for ``jobs=1`` and ``jobs=N``.

    ``metrics`` is an optional
    :class:`repro.analysis.metrics.ExplorationMetrics` collector.  It
    records wall-clock phases and engine counters *beside* the returned
    ``ExplorationStats``, which stays untouched: collecting metrics
    never changes what is explored or reported.

    ``timeout`` is a wall-clock budget in seconds.  Both budgets stop
    exploration *cleanly*: the engines raise
    :class:`ExplorationInterrupted` carrying the partial statistics and
    the triggering reason, instead of discarding the work done so far.

    ``state_cache`` (default on) enables the DPOR prefix-equivalence
    state cache (see ``docs/performance.md``); it is ignored by the
    naive engine.  The CLI exposes it as ``check --no-state-cache``.

    ``frontier`` is an optional
    :class:`repro.runtime.frontier.FrontierStore` making the
    exploration durable and resumable (see
    ``docs/resumable_exploration.md``).  Checkpointing is a property of
    the *sharded* engine -- its frontier is the unit of durability --
    so ``frontier`` requires an explicit ``jobs`` value (``jobs=1``
    checkpoints a serial-speed run).
    """
    if reduction not in ("naive", "dpor"):
        raise ValueError(f"unknown reduction {reduction!r} "
                         f"(expected 'naive' or 'dpor')")
    if frontier is not None and jobs is None:
        raise ValueError(
            "frontier checkpointing requires the sharded engine; pass "
            "an explicit jobs value (jobs=1 for serial-speed execution)")
    deadline = monotonic() + timeout if timeout is not None else None
    if jobs is not None:
        from .parallel import DEFAULT_PREFIX_FACTOR, explore_parallel
        return explore_parallel(
            build, check, crash_plan_factory=crash_plan_factory,
            max_steps=max_steps, max_runs=max_runs, jobs=jobs,
            reduction=reduction,
            prefix_factor=prefix_factor or DEFAULT_PREFIX_FACTOR,
            metrics=metrics, deadline=deadline,
            state_cache=state_cache, frontier=frontier)
    if reduction == "dpor":
        from .dpor import explore_dpor
        return explore_dpor(build, check,
                            crash_plan_factory=crash_plan_factory,
                            max_steps=max_steps, max_runs=max_runs,
                            metrics=metrics, deadline=deadline,
                            state_cache=state_cache)
    if metrics is None:
        return _explore_naive(build, check, crash_plan_factory,
                              max_steps, max_runs, deadline=deadline)
    from time import perf_counter
    counters: Dict[str, Any] = {}
    start = perf_counter()
    try:
        stats = _explore_naive(build, check, crash_plan_factory,
                               max_steps, max_runs, counters=counters,
                               deadline=deadline)
    finally:
        # A serial run is one shard; timing and watermarks are recorded
        # even when a check failure or budget error propagates.
        metrics.record_phase("shard_execution", perf_counter() - start)
        metrics.absorb_counters(counters)
    metrics.record_stats(stats)
    return stats
