"""Exhaustive schedule exploration (bounded model checking).

Sampling schedules with seeded adversaries catches most interleaving
bugs; *exhausting* them proves their absence for small configurations.
:func:`explore` enumerates every schedule of a (re-buildable) system by
depth-first search over the enabled set, replaying each prefix from
scratch -- objects and generators are cheap to rebuild, which keeps the
explorer stateless and trivially correct.

Used by the test suite to verify, over ALL interleavings of 2-3 process
systems (and per crash plan):

* safe-agreement / x-safe-agreement agreement + validity,
* adopt-commit coherence,
* splitter invariants,
* queue-based 2-consensus.

Busy-waiting configurations have unbounded schedules; ``max_steps``
bounds the depth (safety violations, if any, show up in finite
prefixes -- this is bounded model checking, and the bound is reported).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from .adversary import Adversary
from .crash import CrashPlan
from .process import ProcessHandle
from .run import RunResult
from .scheduler import Scheduler
from .trace import Trace


@dataclass
class ExplorationStats:
    """What the explorer covered.

    ``pruned_runs`` is only nonzero under partial-order reduction
    (``reduction="dpor"``): a lower bound on the schedules proven
    redundant and skipped (each unexplored branch roots a whole subtree,
    so the true saving is at least this large).
    """

    complete_runs: int = 0
    truncated_runs: int = 0
    max_depth_seen: int = 0
    pruned_runs: int = 0

    @property
    def total_runs(self) -> int:
        return self.complete_runs + self.truncated_runs

    @property
    def reduction_ratio(self) -> float:
        """Explored fraction of (explored + provably pruned) branches.

        1.0 means no reduction; smaller is better.  This is an *upper
        bound* on the true explored fraction, because ``pruned_runs``
        undercounts the schedules each pruned branch stood for.
        """
        denominator = self.total_runs + self.pruned_runs
        if denominator == 0:
            return 1.0
        return self.total_runs / denominator

    def __str__(self) -> str:
        text = (f"{self.complete_runs} complete + "
                f"{self.truncated_runs} truncated runs, "
                f"max depth {self.max_depth_seen}")
        if self.pruned_runs:
            text += (f", {self.pruned_runs} pruned branches "
                     f"(reduction ratio <= {self.reduction_ratio:.3f})")
        return text


class _Replay(Adversary):
    """Plays a fixed prefix; raises if asked beyond it."""

    def __init__(self, prefix: List[int]) -> None:
        self.prefix = prefix
        self.cursor = 0

    def pick(self, enabled, step):
        choice = self.prefix[self.cursor]
        self.cursor += 1
        if choice not in enabled:
            raise AssertionError(
                f"replay divergence: {choice} not enabled at step "
                f"{step} (enabled: {enabled})")
        return choice

    def reset(self) -> None:
        self.cursor = 0


def _run_prefix(build: Callable[[], Tuple[Dict[int, Generator], Any]],
                prefix: List[int],
                crash_plan_factory: Optional[Callable[[], CrashPlan]],
                max_steps: int):
    """Replay ``prefix``; returns (result_or_None, enabled_after).

    result is a RunResult when the system reached a terminal state
    (including detected deadlock) during or exactly at the end of the
    prefix; otherwise None and the enabled set for extension.
    """
    programs, store = build()
    handles = {pid: ProcessHandle(pid, gen)
               for pid, gen in programs.items()}
    scheduler = Scheduler(
        handles=handles,
        store=store,
        adversary=_Replay(prefix),
        crash_plan=(crash_plan_factory() if crash_plan_factory else None),
        trace=Trace(enabled=False),
        max_steps=max_steps,
    )
    # Drive manually: one pick per prefix entry.
    for _ in range(len(prefix)):
        enabled = scheduler._enabled()
        if not enabled:
            break
        scheduler._step(handles[scheduler.adversary.pick(
            enabled, scheduler.steps)])
    enabled = scheduler._enabled()
    # Extension candidates with exact stutter pruning: a process whose
    # pending single-condition spin already failed since the last
    # state-changing step (spin_failures > 0, reset by the scheduler on
    # every mutating step) would deterministically fail again -- the
    # store cannot have changed -- so re-scheduling it is a stutter and
    # every schedule containing it is equivalent to one without.
    from .ops import SpinOp
    candidates = [pid for pid in enabled
                  if not (isinstance(handles[pid].pending, SpinOp)
                          and handles[pid].pending.period == 1
                          and handles[pid].spin_failures > 0)]
    deadlocked = bool(enabled) and not candidates
    if deadlocked:
        # every enabled process is spinning on a provably-false
        # condition: permanent deadlock, exactly detected.
        for pid in enabled:
            handles[pid].mark_blocked()
        enabled = []
    if not enabled:
        decisions = {pid: h.decision for pid, h in handles.items()
                     if h.decided}
        result = RunResult(
            statuses={pid: h.status for pid, h in handles.items()},
            decisions=decisions,
            steps=scheduler.steps,
            deadlocked=deadlocked,
            out_of_steps=False,
            trace=None,
            store=store,
        )
        return result, []
    return None, sorted(candidates)


def explore(build: Callable[[], Tuple[Dict[int, Generator], Any]],
            check: Callable[[RunResult], None],
            crash_plan_factory: Optional[Callable[[], CrashPlan]] = None,
            max_steps: int = 24,
            max_runs: int = 200_000,
            reduction: str = "naive") -> ExplorationStats:
    """Exhaustively check every schedule of the system built by ``build``.

    ``build()`` must return a fresh ``(programs, store)`` pair each call
    (generators are single-use).  ``check(result)`` is invoked on every
    complete run and should assert the safety property under test.
    Prefixes longer than ``max_steps`` are counted as truncated (bounded
    exploration).  The ``max_runs`` budget is inclusive: exactly
    ``max_runs`` runs may execute; needing even one more raises
    ``RuntimeError`` -- shrink the configuration instead of silently
    sampling.

    ``reduction`` selects the engine:

    * ``"naive"`` -- enumerate every interleaving by stateless prefix
      replay (the historical behaviour; O(branching^depth)).
    * ``"dpor"`` -- dynamic partial-order reduction
      (:func:`repro.runtime.dpor.explore_dpor`): one representative per
      class of schedules equivalent up to commuting independent steps.
      Same terminal states, far fewer runs; property failures are shrunk
      to a minimal replayable counterexample.
    """
    if reduction == "dpor":
        from .dpor import explore_dpor
        return explore_dpor(build, check,
                            crash_plan_factory=crash_plan_factory,
                            max_steps=max_steps, max_runs=max_runs)
    if reduction != "naive":
        raise ValueError(f"unknown reduction {reduction!r} "
                         f"(expected 'naive' or 'dpor')")
    stats = ExplorationStats()
    stack: List[List[int]] = [[]]
    while stack:
        if stats.total_runs >= max_runs:
            # Inclusive budget: the stack is non-empty, so at least one
            # more run would be needed to finish the exploration.
            raise RuntimeError(
                f"exploration exceeded max_runs={max_runs}; "
                f"shrink the configuration ({stats})")
        prefix = stack.pop()
        stats.max_depth_seen = max(stats.max_depth_seen, len(prefix))
        result, enabled = _run_prefix(build, prefix,
                                      crash_plan_factory, max_steps)
        if result is not None:
            stats.complete_runs += 1
            check(result)
        elif len(prefix) >= max_steps:
            stats.truncated_runs += 1
        else:
            for pid in reversed(enabled):
                stack.append(prefix + [pid])
    return stats
