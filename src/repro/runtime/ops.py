"""Operation descriptors exchanged between process code and the scheduler.

Process code in this library is written as Python generators.  Every shared
memory access is expressed by *yielding* an operation descriptor; the
scheduler executes the operation atomically and sends the result back into
the generator.  One yield == one atomic step, which gives exactly the
asynchronous atomic-step semantics of the ASM(n, t, x) model of the paper
(Imbs & Raynal 2010, Section 2.3) without relying on Python threads.

Two kinds of descriptors exist:

* :class:`Invocation` -- an atomic operation on a shared object (write,
  snapshot, propose, ...).  Executed by the top-level scheduler.
* :class:`SpinOp` -- a *read-only* invocation plus a predicate.  The process
  is busy-waiting: the scheduler re-applies the invocation each time the
  process is scheduled and only resumes the generator once the predicate
  holds.  Because spin operations are read-only, a configuration in which
  every live process is spinning with a false predicate is a permanent
  deadlock, which the scheduler detects and reports (this is how blocked
  simulated processes become *observable* in the blocking-lemma benchmarks).

:class:`LocalOp` is the base class for simulator-local control operations
(e.g. the mutex1/mutex2 acquisitions of the BG simulation).  Those are
resolved inside a simulator's thread trampoline and must never reach the
top-level scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, FrozenSet, Tuple


@dataclass(frozen=True, slots=True)
class Invocation:
    """One atomic operation on a named shared object."""

    obj: str
    method: str
    args: Tuple[Any, ...] = ()

    def __repr__(self) -> str:
        rendered = ", ".join(repr(a) for a in self.args)
        return f"{self.obj}.{self.method}({rendered})"


# ---------------------------------------------------------------------------
# Read/write footprints (the independence relation of the DPOR explorer).
# ---------------------------------------------------------------------------

class _WholeObject:
    """Wildcard location: the entire state of an object.

    Used by operations whose footprint is not confined to one addressable
    location (snapshots read every entry; a queue dequeue touches the whole
    queue).  A wildcard overlaps every location of the same object.
    """

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "*"

    def __reduce__(self):
        return (_WholeObject, ())


#: Wildcard location covering an object's whole state.
WHOLE = _WholeObject()

#: A location is ``(object_name, key)`` where ``key`` is a hashable
#: address inside the object (a cell index, a family key, a
#: ``(family_key, index)`` pair, ...) or :data:`WHOLE`.
Location = Tuple[str, Any]


def _keys_overlap(k1: Any, k2: Any) -> bool:
    """Do two intra-object location keys address overlapping state?

    :data:`WHOLE` overlaps everything.  Tuple keys are compared
    element-wise so a wildcard *component* works too: the snapshot-family
    location ``(key, WHOLE)`` overlaps ``(key, 3)`` but not
    ``(other_key, 3)``.  Keys of differing tuple lengths are treated as
    overlapping (conservative: unknown addressing scheme).
    """
    if k1 is WHOLE or k2 is WHOLE:
        return True
    if isinstance(k1, tuple) and isinstance(k2, tuple):
        if len(k1) != len(k2):
            return True
        return all(_keys_overlap(a, b) for a, b in zip(k1, k2))
    if isinstance(k1, tuple) or isinstance(k2, tuple):
        return True
    return k1 == k2


@dataclass(frozen=True, slots=True)
class Footprint:
    """The shared-memory read and write sets of one atomic step.

    Every schedulable operation maps to a footprint (the object's
    :meth:`~repro.memory.base.SharedObject.footprint` hook computes it);
    two steps of *different* processes are **independent** -- executing
    them in either order yields the same state and the same results --
    exactly when their footprints do not :func:`conflict <conflicts>`.
    This is the independence relation the DPOR explorer
    (`repro.runtime.dpor`) prunes schedules with, so over-approximating a
    footprint is always safe and under-approximating one is never safe.
    """

    reads: FrozenSet[Location] = frozenset()
    writes: FrozenSet[Location] = frozenset()

    # -- constructors --------------------------------------------------
    @classmethod
    def read(cls, obj: str, key: Any = WHOLE) -> "Footprint":
        return cls(reads=frozenset({(obj, key)}))

    @classmethod
    def write(cls, obj: str, key: Any = WHOLE) -> "Footprint":
        return cls(writes=frozenset({(obj, key)}))

    @classmethod
    def readwrite(cls, obj: str, key: Any = WHOLE) -> "Footprint":
        loc = frozenset({(obj, key)})
        return cls(reads=loc, writes=loc)

    def merge(self, other: "Footprint") -> "Footprint":
        return Footprint(reads=self.reads | other.reads,
                         writes=self.writes | other.writes)

    # -- queries -------------------------------------------------------
    @property
    def is_readonly(self) -> bool:
        return not self.writes

    def __repr__(self) -> str:
        def render(locs):
            return "{" + ", ".join(
                f"{o}[{k!r}]" for o, k in sorted(
                    locs, key=lambda loc: (loc[0], repr(loc[1])))) + "}"
        return f"Footprint(r={render(self.reads)}, w={render(self.writes)})"


#: Footprint of a step touching no shared state (e.g. a crash event).
EMPTY_FOOTPRINT = Footprint()


def _locations_overlap(xs: FrozenSet[Location],
                       ys: FrozenSet[Location]) -> bool:
    for obj1, key1 in xs:
        for obj2, key2 in ys:
            if obj1 == obj2 and _keys_overlap(key1, key2):
                return True
    return False


def conflicts(a: Footprint, b: Footprint) -> bool:
    """Do two footprints conflict (write/write or read/write overlap)?

    Non-conflicting footprints commute: the two steps are independent.
    ``None`` stands for an unknown footprint and conflicts with
    everything (maximally conservative).
    """
    if a is None or b is None:
        return True
    return (_locations_overlap(a.writes, b.writes)
            or _locations_overlap(a.writes, b.reads)
            or _locations_overlap(a.reads, b.writes))


@dataclass(frozen=True, slots=True)
class SpinOp:
    """A busy-wait step: re-apply ``invocation`` until ``predicate`` holds.

    ``period`` is the number of *consecutive* failed spin steps after which
    the process may be considered stuck by the deadlock detector.  A plain
    process spins on a single condition (``period == 1``).  A BG simulator
    cycles over several internal threads, each possibly spinning on a
    different condition, and therefore reports ``period = number of live
    threads``: only a full cycle of failed spins proves the simulator can
    make no progress.
    """

    invocation: Invocation
    predicate: Callable[[Any], bool]
    period: int = 1

    def __repr__(self) -> str:
        return f"spin({self.invocation!r}, period={self.period})"


class LocalOp:
    """Base class for control operations local to a simulator.

    The top-level scheduler refuses to execute these; they exist so that a
    simulator's thread trampoline can resolve thread-local concerns (mutex
    acquisition, bookkeeping) without consuming a shared-memory step, exactly
    as the paper notes that mutex1/mutex2 are "purely local to each
    simulator" (Section 3.2.3).
    """


class _SpinFailed:
    """Sentinel sent into a generator whose spin predicate was false."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<SPIN_FAILED>"


#: Sent into the generator after a failed spin step.  The process re-yields
#: a (possibly different) SpinOp; this is what lets a BG simulator cycle
#: over several internally-spinning threads instead of being pinned to one
#: condition.  Plain process code should use :func:`wait_until` rather than
#: handling the sentinel by hand.
SPIN_FAILED = _SpinFailed()


def spin(invocation: Invocation,
         predicate: Callable[[Any], bool],
         period: int = 1) -> SpinOp:
    """Convenience constructor for :class:`SpinOp`."""
    return SpinOp(invocation, predicate, period)


def wait_until(make_invocation: Callable[[], Invocation],
               predicate: Callable[[Any], bool],
               period: int = 1):
    """Busy-wait until a read-only invocation satisfies ``predicate``.

    Usage: ``snap = yield from wait_until(lambda: mem.snapshot(), pred)``.
    Each failed check is one atomic (read-only) step; the scheduler's
    deadlock detector will retire the process if the predicate can provably
    never hold.
    """
    while True:
        result = yield SpinOp(make_invocation(), predicate, period)
        if result is not SPIN_FAILED:
            return result


class ObjectProxy:
    """Builds :class:`Invocation` descriptors with attribute syntax.

    ``mem = ObjectProxy('mem'); mem.write(3, 'v')`` produces
    ``Invocation('mem', 'write', (3, 'v'))``.  Proxies hold no state: they
    are a purely syntactic convenience for process code.
    """

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        self._name = name

    @property
    def name(self) -> str:
        return self._name

    def __getattr__(self, method: str) -> Callable[..., Invocation]:
        if method.startswith("_"):
            raise AttributeError(method)

        def build(*args: Any) -> Invocation:
            return Invocation(self._name, method, tuple(args))

        build.__name__ = f"{self._name}.{method}"
        return build

    def __repr__(self) -> str:
        return f"ObjectProxy({self._name!r})"


def indexed_proxy(prefix: str, index: Any) -> ObjectProxy:
    """Proxy for an element of an array of objects, e.g. ``x_cons[3]``.

    Array objects are stored flat in the object store under names such as
    ``"x_cons[3]"``; this helper keeps the naming scheme in one place.
    """
    return ObjectProxy(f"{prefix}[{index}]")
