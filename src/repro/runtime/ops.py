"""Operation descriptors exchanged between process code and the scheduler.

Process code in this library is written as Python generators.  Every shared
memory access is expressed by *yielding* an operation descriptor; the
scheduler executes the operation atomically and sends the result back into
the generator.  One yield == one atomic step, which gives exactly the
asynchronous atomic-step semantics of the ASM(n, t, x) model of the paper
(Imbs & Raynal 2010, Section 2.3) without relying on Python threads.

Two kinds of descriptors exist:

* :class:`Invocation` -- an atomic operation on a shared object (write,
  snapshot, propose, ...).  Executed by the top-level scheduler.
* :class:`SpinOp` -- a *read-only* invocation plus a predicate.  The process
  is busy-waiting: the scheduler re-applies the invocation each time the
  process is scheduled and only resumes the generator once the predicate
  holds.  Because spin operations are read-only, a configuration in which
  every live process is spinning with a false predicate is a permanent
  deadlock, which the scheduler detects and reports (this is how blocked
  simulated processes become *observable* in the blocking-lemma benchmarks).

:class:`LocalOp` is the base class for simulator-local control operations
(e.g. the mutex1/mutex2 acquisitions of the BG simulation).  Those are
resolved inside a simulator's thread trampoline and must never reach the
top-level scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Tuple


@dataclass(frozen=True)
class Invocation:
    """One atomic operation on a named shared object."""

    obj: str
    method: str
    args: Tuple[Any, ...] = ()

    def __repr__(self) -> str:
        rendered = ", ".join(repr(a) for a in self.args)
        return f"{self.obj}.{self.method}({rendered})"


@dataclass(frozen=True)
class SpinOp:
    """A busy-wait step: re-apply ``invocation`` until ``predicate`` holds.

    ``period`` is the number of *consecutive* failed spin steps after which
    the process may be considered stuck by the deadlock detector.  A plain
    process spins on a single condition (``period == 1``).  A BG simulator
    cycles over several internal threads, each possibly spinning on a
    different condition, and therefore reports ``period = number of live
    threads``: only a full cycle of failed spins proves the simulator can
    make no progress.
    """

    invocation: Invocation
    predicate: Callable[[Any], bool]
    period: int = 1

    def __repr__(self) -> str:
        return f"spin({self.invocation!r}, period={self.period})"


class LocalOp:
    """Base class for control operations local to a simulator.

    The top-level scheduler refuses to execute these; they exist so that a
    simulator's thread trampoline can resolve thread-local concerns (mutex
    acquisition, bookkeeping) without consuming a shared-memory step, exactly
    as the paper notes that mutex1/mutex2 are "purely local to each
    simulator" (Section 3.2.3).
    """


class _SpinFailed:
    """Sentinel sent into a generator whose spin predicate was false."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<SPIN_FAILED>"


#: Sent into the generator after a failed spin step.  The process re-yields
#: a (possibly different) SpinOp; this is what lets a BG simulator cycle
#: over several internally-spinning threads instead of being pinned to one
#: condition.  Plain process code should use :func:`wait_until` rather than
#: handling the sentinel by hand.
SPIN_FAILED = _SpinFailed()


def spin(invocation: Invocation,
         predicate: Callable[[Any], bool],
         period: int = 1) -> SpinOp:
    """Convenience constructor for :class:`SpinOp`."""
    return SpinOp(invocation, predicate, period)


def wait_until(make_invocation: Callable[[], Invocation],
               predicate: Callable[[Any], bool],
               period: int = 1):
    """Busy-wait until a read-only invocation satisfies ``predicate``.

    Usage: ``snap = yield from wait_until(lambda: mem.snapshot(), pred)``.
    Each failed check is one atomic (read-only) step; the scheduler's
    deadlock detector will retire the process if the predicate can provably
    never hold.
    """
    while True:
        result = yield SpinOp(make_invocation(), predicate, period)
        if result is not SPIN_FAILED:
            return result


class ObjectProxy:
    """Builds :class:`Invocation` descriptors with attribute syntax.

    ``mem = ObjectProxy('mem'); mem.write(3, 'v')`` produces
    ``Invocation('mem', 'write', (3, 'v'))``.  Proxies hold no state: they
    are a purely syntactic convenience for process code.
    """

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        self._name = name

    @property
    def name(self) -> str:
        return self._name

    def __getattr__(self, method: str) -> Callable[..., Invocation]:
        if method.startswith("_"):
            raise AttributeError(method)

        def build(*args: Any) -> Invocation:
            return Invocation(self._name, method, tuple(args))

        build.__name__ = f"{self._name}.{method}"
        return build

    def __repr__(self) -> str:
        return f"ObjectProxy({self._name!r})"


def indexed_proxy(prefix: str, index: Any) -> ObjectProxy:
    """Proxy for an element of an array of objects, e.g. ``x_cons[3]``.

    Array objects are stored flat in the object store under names such as
    ``"x_cons[3]"``; this helper keeps the naming scheme in one place.
    """
    return ObjectProxy(f"{prefix}[{index}]")
