"""Shard leases: time-bounded grants with heartbeat renewal.

The worker pool (:mod:`repro.runtime.parallel`) hands each frontier
shard to exactly one worker at a time.  A worker that dies is observed
immediately (EOF on its private result pipe), but a worker that merely
*wedges* -- SIGSTOPped, swapped out forever, stuck in a kernel call --
produces no EOF and would hold its shard hostage for the rest of the
run.  Leases close that gap: every grant carries an expiry instant,
workers renew it with periodic heartbeats while they execute, and the
coordinator re-grants any shard whose lease lapses.  Re-granting is
sound for the same reason SIGKILL recovery always was: shards are
deterministic, so executing one twice yields the same outcome and the
coordinator keeps only the first result per shard.

This is deliberately the shape a *distributed* work queue needs
(grant + heartbeat + expiry + re-grant), kept free of any process or
pipe machinery so a future multi-machine coordinator can reuse it
unchanged; only the transport that carries heartbeats is pool-specific.

Clocks are ``time.monotonic`` throughout (never wall time, which can
step backwards under NTP).  All methods take an optional explicit
``now`` so tests can drive expiry without sleeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import monotonic
from typing import Dict, List, Optional

#: Seconds a grant stays valid without a heartbeat.  Module-level so
#: tests can shrink it; must comfortably exceed the heartbeat interval
#: (a healthy worker renews many times per lease).
DEFAULT_LEASE_TIMEOUT = 10.0

#: Seconds between worker heartbeats.  Kept well under the lease
#: timeout so a single delayed heartbeat never expires a healthy lease.
DEFAULT_HEARTBEAT_INTERVAL = 1.0


@dataclass
class Lease:
    """One live grant: which worker holds which shard until when."""

    shard: int
    worker: int
    granted_at: float
    expires_at: float
    renewals: int = 0


class LeaseTable:
    """The coordinator's ledger of outstanding shard leases.

    ``grant`` registers a shard with a worker, ``renew`` extends it on
    a heartbeat, ``release`` retires it (completion or worker death),
    and ``expired`` lists the shards whose leases lapsed -- the
    coordinator re-grants those.  One lease per shard at a time: a
    shard re-granted after expiry simply gets a fresh lease, and a
    stale heartbeat from the previous holder (identified by worker id)
    no longer renews it.
    """

    def __init__(self, timeout: float = DEFAULT_LEASE_TIMEOUT) -> None:
        self.timeout = timeout
        self._leases: Dict[int, Lease] = {}

    def __len__(self) -> int:
        return len(self._leases)

    def grant(self, shard: int, worker: int,
              now: Optional[float] = None) -> Lease:
        """Open (or replace) the lease on ``shard`` for ``worker``."""
        if now is None:
            now = monotonic()
        lease = Lease(shard=shard, worker=worker, granted_at=now,
                      expires_at=now + self.timeout)
        self._leases[shard] = lease
        return lease

    def renew(self, shard: int, worker: int,
              now: Optional[float] = None) -> bool:
        """Extend ``shard``'s lease on a heartbeat from ``worker``.

        Returns False (no-op) when the lease is gone or has been
        re-granted to a different worker -- the stale holder's
        heartbeats must not keep a revoked lease alive.
        """
        if now is None:
            now = monotonic()
        lease = self._leases.get(shard)
        if lease is None or lease.worker != worker:
            return False
        lease.expires_at = now + self.timeout
        lease.renewals += 1
        return True

    def release(self, shard: int) -> Optional[Lease]:
        """Retire ``shard``'s lease (completed, or holder known dead)."""
        return self._leases.pop(shard, None)

    def holder(self, shard: int) -> Optional[int]:
        """The worker currently holding ``shard``, if any."""
        lease = self._leases.get(shard)
        return lease.worker if lease is not None else None

    def expired(self, now: Optional[float] = None) -> List[Lease]:
        """Leases past their expiry, in shard order (deterministic)."""
        if now is None:
            now = monotonic()
        return sorted((lease for lease in self._leases.values()
                       if now >= lease.expires_at),
                      key=lambda lease: lease.shard)
