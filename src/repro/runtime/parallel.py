"""Multiprocess schedule exploration: shard the tree, merge deterministically.

Exhaustive checking is embarrassingly parallel *if* the schedule tree is
split carefully: ``build()`` is a pure factory, so any process can replay
a prefix from scratch and own the whole subtree below it.  The coordinator
here

1. expands a **frontier** serially -- BFS over the schedule tree until at
   least ``prefix_factor x max(16, cpu_count, jobs)`` open prefixes exist
   (terminal/truncated states met on the way are checked and counted
   immediately).  Under DPOR the expansion schedules *every* non-sleeping
   candidate at each pre-frontier state -- a trivially persistent set --
   and propagates sleep sets to the frontier nodes with the exact rule
   the serial engine uses, so the union of shard subtrees covers the same
   Mazurkiewicz traces the serial search would;
2. farms each frontier prefix out to a ``fork``-based worker pool
   (:func:`run_pool`), each worker replaying its prefix and exploring the
   subtree with the ordinary serial engine in *collect* mode (property
   failures are recorded, not raised, so every shard finishes);
3. **merges** shard statistics in frontier order via
   :meth:`ExplorationStats.merge` -- run counts and the winning violation
   (first by lexicographic prefix order) are therefore reproducible
   regardless of worker timing -- and only then shrinks the winning
   schedule with ddmin, in-process.

Determinism contract: the frontier target is independent of ``jobs``
(for any ``jobs <= max(16, cpu_count)``), so ``jobs=1`` and ``jobs=N``
explore the *identical* shards and report identical statistics and
counterexamples; ``jobs`` only controls how many OS processes execute
them.  Degradation is graceful: with ``jobs=1``, a single shard, or no
``fork`` start method, shards run in-process; a worker that dies
mid-shard (e.g. SIGKILL) has its orphaned shard re-executed in-process,
which is sound because shards are deterministic.
"""

from __future__ import annotations

import multiprocessing as mp
import multiprocessing.connection  # noqa: F401 - mp.connection.wait
import os
import pickle
from typing import (Any, Callable, Dict, Generator, List, Optional,
                    Sequence, Tuple, Union)

from .crash import CrashPlan
from .dpor import (Counterexample, CounterexampleFound, _explore_core,
                   _System, replay_schedule, shrink_schedule)
from .explore import (ExplorationInterrupted, ExplorationStats,
                      ShardViolation, _explore_naive, _max_runs_interrupt,
                      _past_deadline, _run_prefix, _timeout_interrupt)
from .lease import (DEFAULT_HEARTBEAT_INTERVAL, DEFAULT_LEASE_TIMEOUT,
                    LeaseTable)
from .ops import conflicts
from .run import RunResult

Builder = Callable[[], Tuple[Dict[int, Generator], Any]]

#: Frontier prefixes generated per potential worker (tunable; larger
#: values give better load balance at the cost of more serial expansion).
DEFAULT_PREFIX_FACTOR = 4

#: Floor on the worker-count term of the frontier target.  Keeping the
#: target at ``prefix_factor * max(_FRONTIER_BASE, cpu_count, jobs)``
#: makes the sharding -- and hence all merged statistics -- identical
#: for every ``jobs <= max(_FRONTIER_BASE, cpu_count)``.
_FRONTIER_BASE = 16

#: Seconds between liveness checks while waiting on the result queue.
_POLL_INTERVAL = 0.05

#: Seconds granted at each stage of worker teardown (cooperative exit,
#: then SIGTERM, then SIGKILL) before escalating.  Module-level so tests
#: can shrink it.
_JOIN_TIMEOUT = 2.0

#: In-process attempts granted to a failed task (a dead worker's orphan
#: or a worker-reported error) before the failure is surfaced.
_RETRY_MAX_ATTEMPTS = 3

#: Base/cap of the exponential backoff slept between retry attempts
#: (0.05s, 0.1s, ... capped).  Module-level so tests can shrink them.
_RETRY_BACKOFF_BASE = 0.05
_RETRY_BACKOFF_CAP = 1.0

#: Lease timeout / heartbeat interval for the coordinator/worker split
#: (see :mod:`repro.runtime.lease`).  A worker renews its shard's lease
#: on every heartbeat; a lease that lapses (SIGKILLed, SIGSTOPped, or
#: otherwise silent worker) has its shard re-granted.  Module-level so
#: tests can shrink both.
_LEASE_TIMEOUT = DEFAULT_LEASE_TIMEOUT
_HEARTBEAT_INTERVAL = DEFAULT_HEARTBEAT_INTERVAL

#: Times a shard may be re-granted to another worker (after a lapsed
#: lease or a dead holder) before the coordinator falls back to the
#: in-process retry ladder.  Bounds the damage of a *deterministically*
#: worker-killing shard: each re-grant costs one worker, the in-process
#: fallback costs none.
_REGRANT_MAX = 2


def fork_available() -> bool:
    """Can this platform start workers by ``fork``?

    Sharded exploration ships closures to workers by fork-time memory
    inheritance, so ``spawn``-only platforms degrade to serial.
    """
    return "fork" in mp.get_all_start_methods()


def resolve_jobs(jobs: Union[int, str, None]) -> int:
    """Normalize a ``--jobs`` value: ``"auto"`` means ``cpu_count``.

    Raises ``ValueError`` on anything that is not a positive integer or
    the string ``"auto"`` (CLI callers turn that into exit code 2).
    """
    if jobs is None:
        return 1
    if isinstance(jobs, str):
        if jobs == "auto":
            return os.cpu_count() or 1
        try:
            jobs = int(jobs)
        except ValueError:
            raise ValueError(
                f"jobs must be a positive integer or 'auto', got {jobs!r}")
    if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
        raise ValueError(
            f"jobs must be a positive integer or 'auto', got {jobs!r}")
    return jobs


# ---------------------------------------------------------------------------
# The worker pool.
# ---------------------------------------------------------------------------

def _run_task(runner: Callable[[Any], Any], payload: Any,
              fault: Optional[str], in_worker: bool,
              attempt: int = 0):
    """Execute one task, honouring injected test faults.

    Fault kinds (comma-separated): ``sigkill`` makes a *worker* die
    silently before running (ignored in-process, so re-execution
    succeeds); ``raise`` fails the task everywhere (so re-execution
    fails too); ``flaky`` fails in workers and on the *first* in-process
    retry but succeeds from the second retry on -- it distinguishes the
    capped-backoff retry ladder from a single re-execution.  ``attempt``
    is 0 for the original (worker or degraded in-process) execution and
    counts the coordinator's in-process retries from 1.  Returns
    ``((value, error_message_or_None), seconds)`` where ``seconds`` is
    the task's own wall-clock (metrics only -- never part of
    exploration statistics).
    """
    from time import perf_counter
    kinds = set(fault.split(",")) if fault else set()
    if "sigkill" in kinds and in_worker:
        import signal
        os.kill(os.getpid(), signal.SIGKILL)
    start = perf_counter()
    try:
        if "raise" in kinds:
            raise RuntimeError("injected shard fault")
        if "flaky" in kinds and (in_worker or attempt < 2):
            raise RuntimeError("injected flaky shard fault")
        return (runner(payload), None), perf_counter() - start
    except Exception as exc:  # noqa: BLE001 - reported to the coordinator
        return (None, f"{type(exc).__name__}: {exc}"), \
            perf_counter() - start


def _worker_loop(task_conn, result_conn,
                 runner: Callable[[Any], Any],
                 fault_plan: Optional[Dict[int, str]],
                 heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL
                 ) -> None:
    """Worker main: drain the private task pipe until the sentinel.

    The worker pickles each outcome itself and ships opaque bytes; a
    value that fails to pickle therefore surfaces as a task error
    instead of wedging the coordinator.  Every channel is private to
    this worker, so even SIGKILL cannot corrupt a sibling's stream (a
    shared ``mp.Queue`` would hang survivors if a worker died holding
    its write lock).

    While a task runs, a per-task heartbeat thread sends
    ``("heartbeat", idx)`` frames every ``heartbeat_interval`` seconds;
    the coordinator renews the task's lease on each one, so only a
    worker that stops making *any* progress (died, SIGSTOPped, wedged
    in a non-Python call) lets its lease lapse.  Heartbeat and result
    frames share the pipe under a lock, so a result can never interleave
    with a beat mid-frame.

    Test-only ``fault_plan`` entries: ``-1: "sigstop"`` makes the
    worker SIGSTOP itself *on receiving the shutdown sentinel* (the
    teardown-escalation fixture); a per-task ``"sigstop"`` makes it
    stop *before* the first heartbeat of that task -- a worker wedged
    mid-shard, observable only through lease expiry.
    """
    import threading
    send_lock = threading.Lock()

    def send_frame(blob: bytes) -> None:
        with send_lock:
            result_conn.send_bytes(blob)

    while True:
        item = task_conn.recv()
        if item is None:
            if "sigstop" in set(((fault_plan or {}).get(-1) or "")
                                .split(",")):
                import signal
                os.kill(os.getpid(), signal.SIGSTOP)
            return
        idx, payload = item
        fault = (fault_plan or {}).get(idx)
        if "sigstop" in set((fault or "").split(",")):
            import signal
            os.kill(os.getpid(), signal.SIGSTOP)
        stop = threading.Event()

        def beat(task_idx: int = idx) -> None:
            while not stop.wait(heartbeat_interval):
                try:
                    send_frame(pickle.dumps(("heartbeat", task_idx)))
                except (OSError, ValueError):
                    return  # coordinator gone; the worker is doomed too
        pulse = threading.Thread(target=beat, daemon=True)
        pulse.start()
        try:
            outcome, seconds = _run_task(runner, payload, fault,
                                         in_worker=True)
        finally:
            stop.set()
            pulse.join()
        try:
            blob = pickle.dumps((idx, outcome, seconds))
        except Exception as exc:  # noqa: BLE001 - unpicklable result
            blob = pickle.dumps(
                (idx, (None, f"unpicklable task result: "
                             f"{type(exc).__name__}: {exc}"), seconds))
        send_frame(blob)


class _Worker:
    """One pool worker: a forked process plus its two private pipes."""

    __slots__ = ("wid", "proc", "task_conn", "result_conn", "inflight")

    def __init__(self, wid: int, ctx, runner, fault_plan,
                 heartbeat_interval: float) -> None:
        self.wid = wid
        task_recv, self.task_conn = ctx.Pipe(duplex=False)
        self.result_conn, result_send = ctx.Pipe(duplex=False)
        self.proc = ctx.Process(
            target=_worker_loop,
            args=(task_recv, result_send, runner, fault_plan,
                  heartbeat_interval),
            daemon=True)
        self.proc.start()
        # Close the child's ends in the coordinator so EOF is observable
        # the moment the worker dies.
        task_recv.close()
        result_send.close()
        self.inflight: Optional[int] = None


def run_pool(payloads: Sequence[Any],
             runner: Callable[[Any], Any],
             jobs: int,
             fault_plan: Optional[Dict[int, str]] = None,
             task_log: Optional[List[Dict[str, Any]]] = None,
             deadline: Optional[float] = None,
             on_grant: Optional[Callable[[int, int], None]] = None,
             on_settle: Optional[Callable[[int, Any], None]] = None
             ) -> List[Tuple[Any, Optional[str]]]:
    """Run ``runner(payload)`` for every payload on up to ``jobs`` forks.

    Returns one ``(value, error_message_or_None)`` outcome per payload,
    in payload order.  Degrades to in-process execution when ``jobs <=
    1``, there is at most one payload, or the platform lacks ``fork``.
    ``fault_plan`` maps payload index to an injected fault kind (tests
    only; see :func:`_run_task` and :func:`_worker_loop`).

    Tasks are handed out under **leases** (:mod:`repro.runtime.lease`):
    each grant expires after ``_LEASE_TIMEOUT`` seconds unless renewed
    by the worker's heartbeat frames.  A lease that lapses -- the
    holder died (also observed immediately as EOF on its private result
    pipe), was SIGSTOPped, or wedged -- gets its task re-granted to a
    free live worker, up to ``_REGRANT_MAX`` times, then falls back to
    the coordinator's in-process retry ladder.  Re-execution in any
    venue is sound because tasks are deterministic; a late result from
    a presumed-dead holder is deduplicated (first settle wins).

    A failed task -- an orphan with no worker left to take it or a
    worker-reported error -- is retried in-process up to
    ``_RETRY_MAX_ATTEMPTS`` times with capped exponential backoff
    between attempts (``_RETRY_BACKOFF_BASE`` doubling up to
    ``_RETRY_BACKOFF_CAP``).  Each backoff is clamped to the remaining
    ``deadline`` budget, and a ladder that reaches the deadline raises
    :class:`~repro.runtime.explore.ExplorationInterrupted` instead of
    sleeping past it.  The degraded (in-process) pool keeps single-shot
    execution: there is no worker boundary for a transient fault to
    hide behind.

    ``on_grant(idx, wid)`` / ``on_settle(idx, outcome)`` are optional
    observer hooks, fired for every grant (worker ``-1`` = the
    coordinator itself) and exactly once per settled outcome -- the
    frontier store journals through them.  ``task_log``, when given,
    receives one ``{"index", "worker", "seconds"}`` entry per executed
    task (metrics only).

    Teardown never leaks children: each worker gets ``_JOIN_TIMEOUT``
    seconds to exit after the sentinel, is SIGTERMed and re-joined on
    timeout, and SIGKILLed (then reaped with a final ``join``) if it is
    *still* alive -- a wedged worker can therefore neither linger as a
    zombie nor survive the pool as a stopped orphan.
    """
    n = len(payloads)
    if n == 0:
        return []

    def log_task(idx: int, wid: int, seconds: float) -> None:
        if task_log is not None:
            task_log.append(
                {"index": idx, "worker": wid, "seconds": seconds})

    if jobs <= 1 or n <= 1 or not fork_available():
        outcomes = []
        for i, p in enumerate(payloads):
            if on_grant is not None:
                on_grant(i, -1)
            outcome, seconds = _run_task(runner, p,
                                         (fault_plan or {}).get(i),
                                         in_worker=False)
            log_task(i, -1, seconds)
            if on_settle is not None:
                on_settle(i, outcome)
            outcomes.append(outcome)
        return outcomes

    ctx = mp.get_context("fork")
    pending = list(range(n))          # task indices not yet handed out
    outcomes: List[Optional[Tuple[Any, Optional[str]]]] = [None] * n
    done = 0
    leases = LeaseTable(timeout=_LEASE_TIMEOUT)
    regrants: Dict[int, int] = {}     # worker re-executions per task
    workers = [_Worker(wid, ctx, runner, fault_plan, _HEARTBEAT_INTERVAL)
               for wid in range(min(jobs, n))]
    live = list(workers)

    def assign(worker: _Worker) -> None:
        if pending and worker.inflight is None:
            idx = pending.pop(0)
            worker.inflight = idx
            leases.grant(idx, worker.wid)
            if on_grant is not None:
                on_grant(idx, worker.wid)
            worker.task_conn.send((idx, payloads[idx]))

    def settle(idx: int, outcome) -> None:
        nonlocal done
        if outcomes[idx] is None:
            outcomes[idx] = outcome
            done += 1
            leases.release(idx)
            if on_settle is not None:
                on_settle(idx, outcome)

    def recover(idx: int, last_error: Optional[str] = None) -> None:
        # In-process re-execution of a failed task: up to
        # _RETRY_MAX_ATTEMPTS attempts with capped exponential backoff
        # between them (tasks are deterministic modulo infrastructure
        # faults, so a retry that succeeds is as good as a worker run).
        from time import monotonic, sleep
        for attempt in range(1, _RETRY_MAX_ATTEMPTS + 1):
            if attempt > 1:
                backoff = min(_RETRY_BACKOFF_BASE * (2 ** (attempt - 2)),
                              _RETRY_BACKOFF_CAP)
                if deadline is not None:
                    remaining = deadline - monotonic()
                    if remaining <= 0:
                        # The wall-clock budget is gone: surface the
                        # interrupt instead of sleeping past it (the
                        # caller merges whatever coverage it holds).
                        raise ExplorationInterrupted(
                            "timeout",
                            f"wall-clock budget exhausted while "
                            f"retrying task {idx} (last error: "
                            f"{last_error})")
                    backoff = min(backoff, remaining)
                sleep(backoff)
            outcome, seconds = _run_task(runner, payloads[idx],
                                         (fault_plan or {}).get(idx),
                                         in_worker=False,
                                         attempt=attempt)
            log_task(idx, -1, seconds)
            if outcome[1] is None:
                settle(idx, outcome)
                return
            last_error = outcome[1]
        settle(idx, (None, last_error))

    def redispatch(idx: int) -> None:
        # The task's lease lapsed or its holder died.  Hand it to a
        # free live worker while the re-grant budget lasts; otherwise
        # run it in-process *now* -- queueing it with no free worker
        # could wait forever on a pool whose every member is wedged.
        if outcomes[idx] is not None:
            return
        free = [w for w in live if w.inflight is None]
        if regrants.get(idx, 0) < _REGRANT_MAX and free:
            regrants[idx] = regrants.get(idx, 0) + 1
            pending.insert(0, idx)
            assign(free[0])
        else:
            recover(idx)

    try:
        for worker in live:
            assign(worker)
        while done < n:
            if not live:
                for idx in list(pending):
                    recover(idx)
                pending.clear()
                break
            for lease in leases.expired():
                # The holder may be wedged or merely silent; either
                # way it stopped heartbeating for a whole lease
                # window.  Leave its inflight mark (a late result is
                # deduplicated by settle) and move the shard on.
                leases.release(lease.shard)
                redispatch(lease.shard)
            if done >= n:
                break
            ready = mp.connection.wait(
                [w.result_conn for w in live], timeout=_POLL_INTERVAL)
            conns = {id(w.result_conn): w for w in live}
            for conn in ready:
                worker = conns[id(conn)]
                try:
                    frame = pickle.loads(conn.recv_bytes())
                except (EOFError, OSError):
                    # Worker died mid-task: retire it, release its
                    # lease, and move its task to a surviving worker
                    # (or in-process) via the same re-grant path a
                    # lapsed lease takes.
                    live.remove(worker)
                    if worker.inflight is not None:
                        idx = worker.inflight
                        if leases.holder(idx) == worker.wid:
                            # Only redispatch if the corpse still held
                            # the lease -- after an expiry the task is
                            # already granted (or settled) elsewhere.
                            leases.release(idx)
                            redispatch(idx)
                    continue
                if frame[0] == "heartbeat":
                    leases.renew(frame[1], worker.wid)
                    continue
                idx, outcome, seconds = frame
                log_task(idx, worker.wid, seconds)
                if outcomes[idx] is not None:
                    # Late duplicate from a presumed-lost holder whose
                    # task was already re-executed elsewhere.
                    pass
                elif outcome[1] is not None:
                    # Worker-reported failure: walk the retry ladder
                    # before surfacing it (the worker stays usable).
                    recover(idx, last_error=outcome[1])
                else:
                    settle(idx, outcome)
                worker.inflight = None
                assign(worker)
    finally:
        for worker in workers:
            try:
                worker.task_conn.send(None)
            except Exception:  # noqa: BLE001 - teardown best-effort
                pass
        for worker in workers:
            worker.proc.join(timeout=_JOIN_TIMEOUT)
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(timeout=_JOIN_TIMEOUT)
            if worker.proc.is_alive():
                # SIGTERM can sit pending forever on a stopped process;
                # SIGKILL cannot be blocked or deferred.  The final
                # join has no timeout: it only reaps an already-dead
                # child, and skipping it is exactly the zombie leak.
                worker.proc.kill()
                worker.proc.join()
            for conn in (worker.task_conn, worker.result_conn):
                try:
                    conn.close()
                except OSError:  # pragma: no cover - already closed
                    pass
    return [outcome for outcome in outcomes]  # all settled


# ---------------------------------------------------------------------------
# Frontier expansion.
# ---------------------------------------------------------------------------

def _expand_frontier(build: Builder,
                     check: Callable[[RunResult], None],
                     crash_plan_factory,
                     max_steps: int,
                     max_runs: int,
                     target: int,
                     use_sleep: bool,
                     counters: Optional[Dict[str, Any]] = None,
                     deadline: Optional[float] = None):
    """Serial BFS until at least ``target`` open prefixes exist.

    Returns ``(stats, shards)`` where each shard is ``(prefix,
    sleep_set)`` in lexicographic prefix order.  Terminal and truncated
    states met during expansion are counted (and checked -- violations
    are *collected* into ``stats.violation``, first-by-prefix wins) so
    frontier + shard statistics add up exactly to a full exploration.
    With ``use_sleep`` (DPOR mode) every non-sleeping candidate is
    scheduled at each expanded state -- a trivially persistent set -- and
    children inherit sleep sets by the serial engine's exact rule.
    ``counters`` is the optional plain-dict metrics channel (frontier
    watermark and sleep-set accounting; never exploration statistics).
    """
    from collections import deque

    stats = ExplorationStats()
    open_nodes: deque = deque([((), frozenset())])
    while open_nodes and len(open_nodes) < target:
        if counters is not None and len(open_nodes) > counters.get(
                "peak_frontier", 0):
            counters["peak_frontier"] = len(open_nodes)
        prefix, sleep = open_nodes.popleft()
        if stats.total_runs >= max_runs:
            raise _max_runs_interrupt(max_runs, stats)
        if _past_deadline(deadline):
            raise _timeout_interrupt(stats)
        stats.max_depth_seen = max(stats.max_depth_seen, len(prefix))
        if use_sleep:
            sysm = _System(build, crash_plan_factory)
            for pid in prefix:
                sysm.execute(pid)
            cands = sysm.candidates()
            if not cands:
                stats.complete_runs += 1
                result = sysm.result()
            else:
                result = None
        else:
            result, cands = _run_prefix(build, list(prefix),
                                        crash_plan_factory, max_steps)
            if result is not None:
                stats.complete_runs += 1
        if result is not None:
            try:
                check(result)
            except Exception as exc:  # noqa: BLE001 - collected
                stats = stats.merge(ExplorationStats(
                    violation=ShardViolation(
                        order_key=tuple(prefix), schedule=tuple(prefix),
                        message=f"{type(exc).__name__}: {exc}",
                        error_type=type(exc).__name__)))
            continue
        if len(prefix) >= max_steps:
            stats.truncated_runs += 1
            continue
        if use_sleep:
            explorable = [p for p in cands if p not in sleep]
            if counters is not None:
                counters["sleep_checks"] = (counters.get("sleep_checks", 0)
                                            + len(cands))
                counters["sleep_hits"] = (counters.get("sleep_hits", 0)
                                          + len(cands) - len(explorable))
            if not explorable:
                stats.pruned_runs += 1
                continue
            pending_fps = sysm.alive_footprints()
            done: set = set()
            for pick in explorable:
                # Child sleep set: exactly the serial engine's rule,
                # evaluated against the footprint ``pick`` executes.
                child_sys = _System(build, crash_plan_factory)
                for pid in prefix:
                    child_sys.execute(pid)
                child_sys.candidates()
                fp = child_sys.execute(pick)
                child_sleep = frozenset(
                    q for q in (set(sleep) | done) - {pick}
                    if q in pending_fps
                    and not conflicts(pending_fps[q], fp))
                open_nodes.append((prefix + (pick,), child_sleep))
                done.add(pick)
        else:
            for pick in cands:
                open_nodes.append((prefix + (pick,), frozenset()))
    if counters is not None and len(open_nodes) > counters.get(
            "peak_frontier", 0):
        counters["peak_frontier"] = len(open_nodes)
    return stats, sorted(open_nodes, key=lambda shard: shard[0])


# ---------------------------------------------------------------------------
# Shard execution (shared by pool workers and remote netshard workers).
# ---------------------------------------------------------------------------

def execute_shard(build: Builder,
                  check: Callable[[RunResult], None],
                  crash_plan_factory=None,
                  *,
                  prefix: Tuple[int, ...],
                  sleep: frozenset,
                  max_steps: int = 24,
                  max_runs: int = 200_000,
                  reduction: str = "dpor",
                  state_cache: bool = True,
                  deadline: Optional[float] = None):
    """Explore one frontier shard; the unit of work every venue runs.

    This is the exact computation a fork-pool worker, the in-process
    fallback, and a remote :class:`repro.runtime.netshard.ShardWorker`
    perform for a ``(prefix, sleep_set)`` shard -- one function, so
    "where a shard ran" can never change what it computed.  Returns
    ``(stats, counters)`` for a completed shard, or ``(partial_stats,
    counters, reason)`` when the budget interrupted it (the partial
    coverage rides back instead of being lost).  Violations are
    *collected* into the statistics, never raised.
    """
    shard_counters: Dict[str, Any] = {}
    try:
        if reduction == "dpor":
            shard_stats = _explore_core(
                build, check, crash_plan_factory=crash_plan_factory,
                max_steps=max_steps, max_runs=max_runs, prefix=prefix,
                root_sleep=sleep, collect=True,
                counters=shard_counters, deadline=deadline,
                state_cache=state_cache)
        else:
            shard_stats = _explore_naive(build, check,
                                         crash_plan_factory, max_steps,
                                         max_runs, root=prefix,
                                         collect=True,
                                         counters=shard_counters,
                                         deadline=deadline)
    except ExplorationInterrupted as exc:
        return (exc.stats or ExplorationStats(), shard_counters,
                exc.reason)
    return shard_stats, shard_counters


# ---------------------------------------------------------------------------
# The coordinator.
# ---------------------------------------------------------------------------

def explore_parallel(build: Optional[Builder] = None,
                     check: Optional[Callable[[RunResult], None]] = None,
                     *,
                     crash_plan_factory=None,
                     max_steps: int = 24,
                     max_runs: int = 200_000,
                     jobs: Union[int, str] = 1,
                     reduction: str = "dpor",
                     prefix_factor: int = DEFAULT_PREFIX_FACTOR,
                     shrink: bool = True,
                     scenario=None,
                     fault_plan: Optional[Dict[int, str]] = None,
                     metrics: Optional[Any] = None,
                     deadline: Optional[float] = None,
                     state_cache: bool = True,
                     frontier: Optional[Any] = None,
                     pool: Optional[Callable[..., List[Any]]] = None
                     ) -> ExplorationStats:
    """Sharded exhaustive exploration across a worker pool.

    Same contract as :func:`repro.runtime.explore.explore`: ``check``
    failures raise (``CounterexampleFound`` with a ddmin-shrunk,
    replayable counterexample under DPOR; plain ``AssertionError`` under
    naive), exceeding ``max_runs`` total runs raises ``RuntimeError``.
    All statistics and the winning counterexample depend only on the
    sharding (``prefix_factor``), never on ``jobs`` or worker timing.

    ``scenario`` may be a :class:`repro.scenarios.ScenarioRef`; workers
    then rebuild ``build``/``check`` by name instead of relying on
    fork-inherited closures (and the coordinator fills in any missing
    ``build``/``check``/``crash_plan_factory`` from it).  ``fault_plan``
    injects worker faults by shard index (tests only).

    ``metrics`` is an optional
    :class:`repro.analysis.metrics.ExplorationMetrics` collector: the
    coordinator records per-phase wall-clock (frontier expansion, shard
    execution, merge, shrink), per-worker shard counts and busy time,
    and the engines' sleep-set/frontier counters.  All of it lives
    outside ``ExplorationStats``, whose jobs-independent bit-for-bit
    contract is unaffected by metrics collection.

    ``deadline`` (absolute ``time.monotonic()`` instant; valid across
    ``fork`` on Linux since CLOCK_MONOTONIC is system-wide) bounds the
    wall clock: the frontier expansion and every shard check it, and an
    exceeded budget -- like an exceeded ``max_runs`` -- surfaces as
    :class:`~repro.runtime.explore.ExplorationInterrupted` carrying the
    statistics merged from the frontier and every shard that reported
    back, so the caller can emit a partial record instead of losing the
    coverage already paid for.

    ``state_cache`` (DPOR only) enables each shard's prefix-equivalence
    state cache.  Caches are strictly *per shard* -- a worker never sees
    hits against a sibling shard's subtrees -- so shard statistics, and
    therefore the merged result, stay identical for ``jobs=1`` and
    ``jobs=N`` with the cache on exactly as with it off.

    ``frontier`` is an optional
    :class:`repro.runtime.frontier.FrontierStore`.  When given, the
    exploration is **durable**: a fresh store records the expansion
    result and shard list in its header, every completed shard is
    journaled (fsynced) as it settles, and an existing store is loaded
    instead of re-expanding -- only the shards its journal has not
    settled are re-executed, and the journaled completions are merged
    back in.  Because :meth:`ExplorationStats.merge` is commutative and
    shards are deterministic, a resumed run's final statistics are
    bit-for-bit identical to an uninterrupted run's.  The store's
    fingerprint is validated against this call's configuration
    (:class:`repro.runtime.frontier.FrontierMismatch` on divergence).

    ``pool`` substitutes the execution venue: any callable with
    :func:`run_pool`'s signature (``(payloads, runner, jobs, *,
    fault_plan, task_log, deadline, on_grant, on_settle) ->
    outcomes``).  The network shard service passes a
    :class:`repro.runtime.netshard.ShardServer` here, so frontier
    expansion, durable journaling, deterministic merging and ddmin
    shrinking are the same code whichever transport executed the
    shards.  The venue is deliberately absent from the checkpoint
    fingerprint, exactly like ``jobs``: a socket-served checkpoint
    resumes under a plain ``check --resume`` and vice versa.
    """
    if scenario is not None and (build is None or check is None):
        resolved = scenario.resolve()
        build = build or resolved.build
        check = check or resolved.check
        if crash_plan_factory is None:
            crash_plan_factory = resolved.crash_plan_factory
    if build is None or check is None:
        raise ValueError("explore_parallel needs build+check or a scenario")
    if reduction not in ("naive", "dpor"):
        raise ValueError(f"unknown reduction {reduction!r} "
                         f"(expected 'naive' or 'dpor')")
    jobs = resolve_jobs(jobs)
    use_sleep = reduction == "dpor"
    target = prefix_factor * max(_FRONTIER_BASE, os.cpu_count() or 1, jobs)
    from time import perf_counter
    # The frontier store needs the expansion counters even when no
    # metrics collector is attached at checkpoint time -- a later
    # resume may attach one.
    counters: Optional[Dict[str, Any]] = (
        {} if (metrics is not None or frontier is not None) else None)
    # Everything that fixes which state space is explored and how it is
    # sharded; a resume under any other value would merge statistics
    # from a different exploration (jobs is deliberately absent -- the
    # sharding contract makes it irrelevant to the result).
    fingerprint = {
        "scenario": ([scenario.name, scenario.n, scenario.x]
                     if scenario is not None else None),
        "max_steps": max_steps,
        "max_runs": max_runs,
        "reduction": reduction,
        "prefix_factor": prefix_factor,
        "state_cache": bool(state_cache),
    }
    phase_start = perf_counter()
    prior_completed: Dict[int, Tuple[ExplorationStats, Dict[str, Any]]] = {}
    if frontier is not None and frontier.exists():
        frontier.load()
        frontier.validate(fingerprint)
        stats = frontier.expansion_stats
        shards = frontier.shards
        if counters is not None:
            counters.update(frontier.expansion_counters)
        prior_completed = dict(frontier.completed)
    else:
        stats, shards = _expand_frontier(build, check, crash_plan_factory,
                                         max_steps, max_runs, target,
                                         use_sleep, counters=counters,
                                         deadline=deadline)
        if frontier is not None:
            frontier.begin(fingerprint, stats, counters or {}, shards)
    if metrics is not None:
        metrics.record_phase("frontier_expansion",
                             perf_counter() - phase_start)
        metrics.shard_count = len(shards)

    # Worker-side shard runner.  Workers resolve the scenario once per
    # process (closures do not survive pickling; a ScenarioRef does) and
    # fall back to the fork-inherited closures otherwise.
    ctx_holder: Dict[str, Any] = {}

    def shard_context():
        if "build" not in ctx_holder:
            if scenario is not None:
                resolved = scenario.resolve()
                ctx_holder["build"] = resolved.build
                ctx_holder["check"] = check if scenario is None \
                    else resolved.check
                ctx_holder["cpf"] = (crash_plan_factory
                                     if scenario is None
                                     else resolved.crash_plan_factory)
            else:
                ctx_holder["build"] = build
                ctx_holder["check"] = check
                ctx_holder["cpf"] = crash_plan_factory
        return ctx_holder["build"], ctx_holder["check"], ctx_holder["cpf"]

    def run_shard(payload):
        # Shards always report their counters -- a plain picklable dict
        # riding back beside the statistics -- because the worker cannot
        # know whether the coordinator is collecting metrics.  A budget
        # interruption inside the shard is marshalled as a third tuple
        # element (reason) rather than an error string, so the partial
        # statistics survive the worker pipe and the coordinator can
        # merge them before re-raising.
        prefix, sleep = payload
        b, c, cpf = shard_context()
        return execute_shard(b, c, cpf, prefix=prefix, sleep=sleep,
                             max_steps=max_steps, max_runs=max_runs,
                             reduction=reduction,
                             state_cache=state_cache, deadline=deadline)

    def fold_counters(shard_counters: Dict[str, Any]) -> None:
        if counters is None:
            return
        for key, delta in shard_counters.items():
            if key == "peak_frontier":
                counters[key] = max(counters.get(key, 0), delta)
            else:
                counters[key] = counters.get(key, 0) + delta

    # Journaled completions from the store's previous life merge first
    # (shard order); merge() is commutative, so the order relative to
    # this run's fresh outcomes cannot matter -- but merging them *now*
    # means an interrupt below still reports their coverage.
    for shard_idx in sorted(prior_completed):
        prior_stats, prior_counters = prior_completed[shard_idx]
        stats = stats.merge(prior_stats)
        fold_counters(prior_counters)
    pending = (frontier.pending_indices(len(shards))
               if frontier is not None else list(range(len(shards))))
    pool_payloads = [shards[i] for i in pending]

    on_grant = on_settle = None
    if frontier is not None:
        def on_grant(pool_idx: int, wid: int) -> None:
            frontier.record_grant(pending[pool_idx], wid)

        def on_settle(pool_idx: int, outcome) -> None:
            value, error = outcome
            # Only fully-explored shards are durable facts; errored or
            # budget-interrupted shards stay pending for the next life.
            if error is None and value is not None and len(value) == 2:
                frontier.record_completion(pending[pool_idx],
                                           value[0], value[1])

    task_log: Optional[List[Dict[str, Any]]] = \
        [] if metrics is not None else None
    phase_start = perf_counter()
    pool_fn = pool if pool is not None else run_pool
    try:
        outcomes = pool_fn(pool_payloads, run_shard, jobs,
                           fault_plan=fault_plan, task_log=task_log,
                           deadline=deadline, on_grant=on_grant,
                           on_settle=on_settle)
    except ExplorationInterrupted:
        # The pool's retry ladder ran out of wall clock; re-raise with
        # the coverage merged so far (expansion plus any journaled
        # completions).
        if frontier is not None:
            frontier.close()
        raise _timeout_interrupt(stats)
    if metrics is not None:
        metrics.record_phase("shard_execution",
                             perf_counter() - phase_start)
        metrics.record_worker_tasks(task_log)
    if frontier is not None:
        frontier.close()
    phase_start = perf_counter()
    interrupt_reason: Optional[str] = None
    for pool_idx, outcome in enumerate(outcomes):
        value, error = outcome
        shard_idx = pending[pool_idx]
        if error is not None:
            raise RuntimeError(
                f"parallel exploration failed on shard {shard_idx} "
                f"(prefix {list(shards[shard_idx][0])}): {error}")
        if len(value) == 3:
            # An interrupted shard: merge its partial statistics, then
            # surface the first (by shard order) interruption reason.
            shard_stats, shard_counters, reason = value
            if interrupt_reason is None:
                interrupt_reason = reason
        else:
            shard_stats, shard_counters = value
        stats = stats.merge(shard_stats)
        fold_counters(shard_counters)
    if metrics is not None:
        metrics.record_phase("merge", perf_counter() - phase_start)
        metrics.record_stats(stats)
        metrics.absorb_counters(counters)

    viol = stats.violation
    if viol is not None:
        # The winning (first-by-prefix-order) violation.  Shrinking and
        # raising happen in the coordinator so the artifact carries live
        # closures regardless of which worker found it.
        if reduction == "naive":
            raise AssertionError(viol.message)
        if shrink:
            phase_start = perf_counter()
            counterexample = shrink_schedule(
                build, check, list(viol.schedule),
                crash_plan_factory=crash_plan_factory,
                max_steps=max(max_steps, len(viol.schedule)))
            if metrics is not None:
                metrics.record_phase("shrink",
                                     perf_counter() - phase_start)
                metrics.ddmin_replays += counterexample.ddmin_attempts
        else:
            schedule = list(viol.schedule)
            result = replay_schedule(
                build, schedule, crash_plan_factory=crash_plan_factory,
                max_steps=max(max_steps, len(schedule)))
            counterexample = Counterexample(
                prefix=schedule, tail=[], original_schedule=schedule,
                error=AssertionError(viol.message), result=result,
                build=build, check=check,
                crash_plan_factory=crash_plan_factory,
                max_steps=max(max_steps, len(schedule)))
        raise CounterexampleFound(counterexample, stats)
    # A found violation outranks a budget interruption (above); with no
    # violation, a shard-side interruption surfaces with the statistics
    # merged from every shard that reported back.
    if interrupt_reason == "max_runs" or stats.total_runs > max_runs:
        raise _max_runs_interrupt(max_runs, stats)
    if interrupt_reason == "timeout":
        raise _timeout_interrupt(stats)
    return stats
