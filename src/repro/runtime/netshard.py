"""Multi-machine shard service: the lease protocol over TCP sockets.

PR 9 split exploration into a transport-free coordinator/worker pair:
:class:`~repro.runtime.lease.LeaseTable` tracks who owns which frontier
shard, heartbeats renew the grants, and lapsed leases are re-granted.
This module is the promised network transport for that protocol -- a
coordinator-side :class:`ShardServer` and a remote-machine
:class:`ShardWorker` speaking grant/heartbeat/complete/steal over the
length-prefixed, checksummed frames of :mod:`repro.runtime.wire` --
with **robustness as the headline**, in the spirit of the source
paper's BG discipline (a slow or crashed simulator must never block
the simulation) and of the Imbs-Raynal-Stainer reduction (treat the
transport as an adversary, not a trusted friend):

* every frame read/write carries a deadline (:mod:`wire <.wire>`);
* workers connect and retry RPCs under capped exponential backoff with
  *deterministic* jitter (:func:`backoff_delay` -- reproducible, yet
  de-synchronized across workers);
* a worker that loses its connection reconnects, **re-identifies**
  itself by name (the server keeps its worker id, so live leases
  survive the blip), and *abandons* a shard whose lease was re-granted
  meanwhile -- the stale-holder rejection of ``LeaseTable`` reused
  verbatim;
* the coordinator degrades gracefully: a shard whose lease lapses is
  re-granted up to the pool's ``_REGRANT_MAX`` ladder, and when all
  remote workers vanish the coordinator executes orphaned shards
  in-process, so remote-machine loss costs throughput, never coverage;
* completions are accepted only from the shard's *current* lease
  holder -- a replayed or stale completion frame (a re-ordering
  network can deliver one from a previous incarnation of the run) is
  rejected, a discipline pinned by the ``netshard-accept-stale-result``
  planted mutant;
* :class:`ChaosProxy` injects transport faults (drop, delay,
  duplicate, truncate, reorder, mid-stream disconnect) between real
  sockets, so the ``network`` differential tier tests the transport
  the same way ``MessageFaultPlan`` tests the algorithms.

The server plugs into :func:`repro.runtime.parallel.explore_parallel`
as a drop-in ``pool``: frontier expansion, durable checkpointing
(``serve --checkpoint``), deterministic merging and ddmin shrinking
are all the *same code* the fork pool uses, so serial, fork-pool and
socket-backed explorations are bit-for-bit identical by construction
-- and the tier asserts it anyway.  CLI surface: ``python -m repro
serve`` / ``python -m repro worker`` (see
``docs/distributed_exploration.md``).
"""

from __future__ import annotations

import hashlib
import itertools
import os
import selectors
import socket
import threading
from collections import deque
from time import monotonic
from time import sleep as _real_sleep
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from . import wire
from .explore import ExplorationInterrupted, ExplorationStats
from .frontier import stats_from_dict, stats_to_dict
from .lease import (DEFAULT_HEARTBEAT_INTERVAL, DEFAULT_LEASE_TIMEOUT,
                    LeaseTable)
from .parallel import _REGRANT_MAX, execute_shard

#: Seconds the coordinator waits for a first worker before it starts
#: executing shards in-process itself (solo mode).  Once any worker has
#: connected, solo mode instead kicks in the moment *no* worker is
#: connected -- all remotes vanished.  Module-level so tests tune it.
DEFAULT_SOLO_AFTER = 5.0

#: Seconds between selector wake-ups (lease sweep + solo-mode check).
_POLL_INTERVAL = 0.05

#: Client connect/RPC backoff ladder (seconds): base doubles per
#: attempt up to the cap, then deterministic jitter is applied.
CONNECT_BACKOFF_BASE = 0.05
CONNECT_BACKOFF_CAP = 2.0

#: Reconnect-and-retry attempts a worker gives one RPC before deciding
#: the server is gone.  Module-level so tests can shrink it.
RPC_ATTEMPTS = 6

#: Seconds a worker sleeps after an ``idle`` reply before re-requesting.
_IDLE_WAIT = 0.2

_WORKER_SEQ = itertools.count()


class WorkerUnavailable(RuntimeError):
    """A worker exhausted its connect attempts without ever connecting."""


class ServerGone(RuntimeError):
    """A worker's server stopped answering after it had been connected.

    Usually benign: the exploration finished (or the coordinator was
    killed) while this worker was between RPCs.
    """


def backoff_delay(key: str, attempt: int,
                  base: float = CONNECT_BACKOFF_BASE,
                  cap: float = CONNECT_BACKOFF_CAP) -> float:
    """Capped exponential backoff with deterministic jitter.

    ``base * 2**attempt`` capped at ``cap``, scaled into ``[0.5, 1.0)``
    of itself by a jitter derived from ``sha256(key, attempt)`` -- no
    wall clock, no global RNG.  Distinct workers (distinct ``key``)
    therefore spread their retries instead of stampeding in lockstep,
    while any given worker's schedule is exactly reproducible.
    """
    # Clamp the exponent: past ~2**64 the doubling is academically above
    # any cap and literally above float range.
    raw = min(base * (2.0 ** min(attempt, 64)), cap)
    digest = hashlib.sha256(f"{key}:{attempt}".encode("utf-8")).digest()
    unit = int.from_bytes(digest[:8], "big") / 2 ** 64
    return raw * (0.5 + 0.5 * unit)


# ---------------------------------------------------------------------------
# Server
# ---------------------------------------------------------------------------

class _Session:
    """Server-side identity of one logical worker (survives reconnects).

    Keyed by the worker's self-chosen name: a worker that loses its TCP
    connection and dials back in re-identifies with the same name and
    gets the same ``worker_id`` -- which is what lets its live leases
    survive the blip (``LeaseTable`` knows holders by id, not socket).
    """

    __slots__ = ("name", "worker_id", "conn", "inflight", "frames_in",
                 "frames_out", "reconnects", "shards")

    def __init__(self, name: str, worker_id: int) -> None:
        self.name = name
        self.worker_id = worker_id
        self.conn: Optional[socket.socket] = None
        #: Last granted, not-yet-settled shard (request idempotence).
        self.inflight: Optional[int] = None
        self.frames_in = 0
        self.frames_out = 0
        self.reconnects = 0
        self.shards = 0


class _ConnState:
    """Per-TCP-connection receive buffer and its bound session."""

    __slots__ = ("conn", "buffer", "session", "last_progress")

    def __init__(self, conn: socket.socket) -> None:
        self.conn = conn
        self.buffer = bytearray()
        self.session: Optional[_Session] = None
        self.last_progress = monotonic()


class ShardServer:
    """Coordinator-side TCP shard service; a drop-in ``pool``.

    Construct it with transport/lease knobs, then pass the instance as
    ``explore_parallel(..., pool=server)``: calling the server with the
    standard pool signature binds a listening socket, serves frontier
    shards to any :class:`ShardWorker` that connects, and returns one
    outcome per payload exactly as :func:`~repro.runtime.parallel.
    run_pool` would.  Leases, re-grants, first-settle-wins dedup and
    the in-process fallback mirror the fork pool's semantics, so the
    merged statistics are transport-independent.

    The protocol core (:meth:`begin` / :meth:`handle_message` /
    :meth:`tick` / :meth:`run_one_inprocess`) is transport-free and
    driven directly by the unit tests and the
    ``netshard-accept-stale-result`` mutant; only :meth:`__call__`
    touches sockets.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 config: Optional[Dict[str, Any]] = None,
                 lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
                 regrant_max: int = _REGRANT_MAX,
                 solo_after: float = DEFAULT_SOLO_AFTER,
                 io_timeout: float = wire.DEFAULT_FRAME_TIMEOUT,
                 announce: Optional[Callable[[str, int], None]] = None
                 ) -> None:
        self.host = host
        self.port = port
        #: Run configuration shipped to workers in the ``welcome`` frame
        #: (scenario name/sizing and engine knobs; see ``cmd_serve``).
        self.config = dict(config or {})
        self.lease_timeout = lease_timeout
        self.regrant_max = regrant_max
        self.solo_after = solo_after
        self.io_timeout = io_timeout
        self._announce = announce
        #: Transport observability (metrics v4): frame / reconnect /
        #: retry tallies, never part of deterministic statistics.
        self.tallies: Dict[str, Any] = {
            "frames_in": 0, "frames_out": 0, "connections": 0,
            "reconnects": 0, "frame_errors": 0, "stale_rejections": 0,
            "regrants": 0, "remote_shards": 0, "inprocess_shards": 0,
            "workers": [],
        }
        self._sessions_by_name: Dict[str, _Session] = {}
        self._sessions_by_id: Dict[int, _Session] = {}
        self._next_worker_id = 0
        self._ever_connected = False
        self._begun = False

    # -- protocol core (transport-free) ---------------------------------

    def begin(self, payloads: Sequence[Any],
              runner: Callable[[Any], Any],
              on_grant: Optional[Callable[[int, int], None]] = None,
              on_settle: Optional[Callable[[int, Any], None]] = None,
              task_log: Optional[List[Dict[str, Any]]] = None,
              deadline: Optional[float] = None) -> None:
        """Arm the server with one run's shards and callbacks."""
        self._payloads = list(payloads)
        self._runner = runner
        self._on_grant = on_grant
        self._on_settle = on_settle
        self._task_log = task_log
        self._deadline = deadline
        n = len(self._payloads)
        self._outcomes: List[Optional[Tuple[Any, Optional[str]]]] = \
            [None] * n
        self._completed: set = set()
        self._pending: deque = deque(range(n))
        #: Shards whose re-grant budget is exhausted: only the
        #: coordinator may still execute them (the pool's ladder).
        self._inproc_only: deque = deque()
        self._leases = LeaseTable(timeout=self.lease_timeout)
        self._regrants: Dict[int, int] = {}
        self._begun = True

    @property
    def done(self) -> bool:
        """Every shard settled?"""
        return len(self._completed) >= len(self._payloads)

    @property
    def outcomes(self) -> List[Optional[Tuple[Any, Optional[str]]]]:
        """Per-payload outcomes settled so far (None = still open)."""
        return list(self._outcomes)

    def handle_message(self, body: Dict[str, Any],
                       now: Optional[float] = None) -> Dict[str, Any]:
        """Apply one protocol message; returns the reply body.

        Pure protocol logic -- no sockets -- so unit tests and the
        planted mutant drive it directly with explicit ``now`` values.
        Unknown or malformed messages get an ``error`` reply rather
        than an exception: a hostile frame must not take the server
        down.
        """
        if now is None:
            now = monotonic()
        kind = body.get("type")
        if kind == "hello":
            return self._handle_hello(body)
        session = self._sessions_by_id.get(body.get("worker_id"))
        if session is None:
            return {"type": "error",
                    "reason": "unknown worker_id (hello first)"}
        if kind == "request":
            return self._handle_request(session, now)
        if kind == "heartbeat":
            shard = body.get("shard")
            renewed = (isinstance(shard, int)
                       and self._leases.renew(shard, session.worker_id,
                                              now=now))
            return {"type": "ok", "renewed": bool(renewed)}
        if kind == "complete":
            return self._handle_complete(session, body)
        return {"type": "error", "reason": f"unknown frame type {kind!r}"}

    def _handle_hello(self, body: Dict[str, Any]) -> Dict[str, Any]:
        name = body.get("worker")
        if not isinstance(name, str) or not name:
            return {"type": "error", "reason": "hello without a worker name"}
        session = self._sessions_by_name.get(name)
        if session is None:
            session = _Session(name, self._next_worker_id)
            self._next_worker_id += 1
            self._sessions_by_name[name] = session
            self._sessions_by_id[session.worker_id] = session
            self.tallies["connections"] += 1
        else:
            session.reconnects += 1
            self.tallies["reconnects"] += 1
        self._ever_connected = True
        return {"type": "welcome", "worker_id": session.worker_id,
                "config": self.config}

    def _handle_request(self, session: _Session,
                        now: float) -> Dict[str, Any]:
        # Request idempotence: a worker whose grant reply was lost asks
        # again and gets the *same* shard back (lease renewed), instead
        # of leaking a second lease onto a different shard.
        if session.inflight is not None:
            idx = session.inflight
            if idx in self._completed:
                session.inflight = None
            elif self._leases.holder(idx) == session.worker_id:
                self._leases.renew(idx, session.worker_id, now=now)
                return self._grant_reply(idx)
            else:
                session.inflight = None  # lease lapsed and moved on
        while self._pending:
            idx = self._pending.popleft()
            if idx in self._completed:
                continue
            self._leases.grant(idx, session.worker_id, now=now)
            session.inflight = idx
            if self._on_grant is not None:
                self._on_grant(idx, session.worker_id)
            return self._grant_reply(idx)
        if self.done:
            return {"type": "done"}
        return {"type": "idle"}

    def _grant_reply(self, idx: int) -> Dict[str, Any]:
        prefix, sleep = self._payloads[idx]
        return {"type": "grant", "shard": idx,
                "prefix": list(prefix), "sleep": sorted(sleep)}

    def _handle_complete(self, session: _Session,
                         body: Dict[str, Any]) -> Dict[str, Any]:
        shard = body.get("shard")
        if not isinstance(shard, int) or not 0 <= shard < \
                len(self._payloads):
            return {"type": "error", "reason": f"bad shard index {shard!r}"}
        if session.inflight == shard:
            session.inflight = None
        if body.get("error") is not None:
            # A worker-reported execution failure: release the lease
            # and route the shard to the coordinator's in-process
            # fallback (a real scenario error will reproduce there and
            # surface; a worker-environment fluke will not).
            if self._leases.holder(shard) == session.worker_id:
                self._leases.release(shard)
                if shard not in self._completed:
                    self._inproc_only.append(shard)
            return {"type": "ok", "accepted": False}
        if not self._accept_completion(shard, session.worker_id):
            self.tallies["stale_rejections"] += 1
            return {"type": "ok", "accepted": False}
        try:
            stats = stats_from_dict(body["stats"])
            counters = dict(body.get("counters") or {})
        except (KeyError, TypeError, ValueError) as exc:
            return {"type": "error",
                    "reason": f"undecodable completion stats: {exc}"}
        session.shards += 1
        self.tallies["remote_shards"] += 1
        self._settle(shard, ((stats, counters), None))
        return {"type": "ok", "accepted": True}

    def _accept_completion(self, shard: int, worker_id: int) -> bool:
        # Only the shard's *current* lease holder may complete it: a
        # frame from an expired or superseded holder -- including one
        # replayed by the network from a previous incarnation of the
        # run -- is rejected, exactly as LeaseTable rejects a stale
        # heartbeat.  The netshard-accept-stale-result mutant drops
        # this check; the network differential tier catches it.
        if shard in self._completed:
            return False
        return self._leases.holder(shard) == worker_id

    def _settle(self, idx: int, outcome: Tuple[Any, Optional[str]]
                ) -> None:
        self._outcomes[idx] = outcome
        self._completed.add(idx)
        self._leases.release(idx)
        for session in self._sessions_by_id.values():
            if session.inflight == idx:
                session.inflight = None
        if self._on_settle is not None:
            self._on_settle(idx, outcome)

    def tick(self, now: Optional[float] = None) -> None:
        """Sweep lapsed leases: re-grant or route to the fallback.

        Mirrors the fork pool's ladder: a shard may lose its holder
        ``regrant_max`` times before only the coordinator may run it.
        """
        if now is None:
            now = monotonic()
        for lease in self._leases.expired(now):
            self._leases.release(lease.shard)
            if lease.shard in self._completed:
                continue
            session = self._sessions_by_id.get(lease.worker)
            if session is not None and session.inflight == lease.shard:
                session.inflight = None
            self._regrants[lease.shard] = \
                self._regrants.get(lease.shard, 0) + 1
            self.tallies["regrants"] += 1
            if self._regrants[lease.shard] > self.regrant_max:
                self._inproc_only.append(lease.shard)
            else:
                self._pending.appendleft(lease.shard)

    def run_one_inprocess(self) -> bool:
        """Execute one eligible shard in the coordinator process.

        Regrant-exhausted shards first, then (in solo mode) ordinary
        pending ones.  Returns False when nothing was eligible.
        """
        queue = self._inproc_only or self._pending
        while queue:
            idx = queue.popleft()
            if idx in self._completed:
                continue
            if self._on_grant is not None:
                self._on_grant(idx, -1)
            from time import perf_counter
            start = perf_counter()
            try:
                outcome: Tuple[Any, Optional[str]] = \
                    (self._runner(self._payloads[idx]), None)
            except Exception as exc:  # noqa: BLE001 - surfaces in merge
                outcome = (None, f"{type(exc).__name__}: {exc}")
            if self._task_log is not None:
                self._task_log.append({"index": idx, "worker": -1,
                                       "seconds": perf_counter() - start})
            self.tallies["inprocess_shards"] += 1
            self._settle(idx, outcome)
            return True
        return False

    def _live_sessions(self) -> int:
        return sum(1 for s in self._sessions_by_id.values()
                   if s.conn is not None)

    # -- socket loop ----------------------------------------------------

    def __call__(self, payloads: Sequence[Any],
                 runner: Callable[[Any], Any],
                 jobs: int = 1,
                 fault_plan: Optional[Dict[int, str]] = None,
                 task_log: Optional[List[Dict[str, Any]]] = None,
                 deadline: Optional[float] = None,
                 on_grant: Optional[Callable[[int, int], None]] = None,
                 on_settle: Optional[Callable[[int, Any], None]] = None
                 ) -> List[Tuple[Any, Optional[str]]]:
        """Serve the payloads over TCP until every one settles.

        The :func:`~repro.runtime.parallel.run_pool` contract: one
        ``(value, error)`` outcome per payload, in payload order.
        ``jobs`` and ``fault_plan`` are accepted for signature
        compatibility and ignored (worker count is whoever connects;
        fault injection is :class:`ChaosProxy`'s job).
        """
        self.begin(payloads, runner, on_grant=on_grant,
                   on_settle=on_settle, task_log=task_log,
                   deadline=deadline)
        if not self._payloads:
            return []
        selector = selectors.DefaultSelector()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        conns: Dict[int, _ConnState] = {}
        try:
            listener.bind((self.host, self.port))
            listener.listen(64)
            listener.setblocking(False)
            bound_host, bound_port = listener.getsockname()[:2]
            self.port = bound_port
            selector.register(listener, selectors.EVENT_READ, None)
            if self._announce is not None:
                self._announce(bound_host, bound_port)
            start = monotonic()
            ran_inprocess = False
            while not self.done:
                if deadline is not None and monotonic() >= deadline:
                    raise ExplorationInterrupted(
                        "timeout", "wall-clock budget exhausted while "
                        "serving shards")
                # After an in-process shard, poll with no delay: a solo
                # coordinator drains its queue at full speed instead of
                # sleeping _POLL_INTERVAL between shards, while a
                # connecting worker is still noticed every iteration.
                wait = 0.0 if ran_inprocess else _POLL_INTERVAL
                for key, _ in selector.select(timeout=wait):
                    if key.fileobj is listener:
                        self._accept(listener, selector, conns)
                    else:
                        self._service(key.fileobj, selector, conns)
                self.tick()
                self._sweep_stalled(selector, conns)
                ran_inprocess = self._maybe_solo(start)
        finally:
            for state in list(conns.values()):
                self._drop_conn(state, selector, conns)
            try:
                selector.unregister(listener)
            except (KeyError, ValueError):  # pragma: no cover
                pass
            listener.close()
            selector.close()
            self._collect_worker_tallies()
        return [outcome for outcome in self._outcomes]

    def _accept(self, listener: socket.socket, selector, conns) -> None:
        try:
            conn, _addr = listener.accept()
        except OSError:  # pragma: no cover - raced shutdown
            return
        conn.setblocking(True)
        conn.settimeout(self.io_timeout)
        state = _ConnState(conn)
        conns[conn.fileno()] = state
        selector.register(conn, selectors.EVENT_READ, state)

    def _service(self, conn: socket.socket, selector, conns) -> None:
        state = conns.get(conn.fileno())
        if state is None:  # pragma: no cover - raced close
            return
        try:
            data = conn.recv(65536)
        except (OSError, ValueError):
            self._drop_conn(state, selector, conns)
            return
        if not data:
            self._drop_conn(state, selector, conns)
            return
        state.buffer.extend(data)
        state.last_progress = monotonic()
        while True:
            try:
                decoded = wire.try_decode(bytes(state.buffer))
            except wire.WireError:
                # Corrupt, oversize or alien bytes: the stream can no
                # longer be trusted to frame-align.  Tell the peer
                # (best effort) and cut the connection; a live worker
                # reconnects and re-identifies.
                self.tallies["frame_errors"] += 1
                self._reply(state, {"type": "error",
                                    "reason": "malformed frame"})
                self._drop_conn(state, selector, conns)
                return
            if decoded is None:
                return
            body, consumed = decoded
            del state.buffer[:consumed]
            self.tallies["frames_in"] += 1
            reply = self.handle_message(body)
            if body.get("type") == "hello" and reply.get("type") == \
                    "welcome":
                session = self._sessions_by_id[reply["worker_id"]]
                if session.conn is not None and session.conn is not \
                        state.conn:
                    # The old connection is superseded (reconnect);
                    # drop our interest in it.
                    old = conns.get(session.conn.fileno())
                    if old is not None:
                        self._drop_conn(old, selector, conns)
                session.conn = state.conn
                state.session = session
            if state.session is not None:
                state.session.frames_in += 1
            if not self._reply(state, reply):
                self._drop_conn(state, selector, conns)
                return

    def _reply(self, state: _ConnState, body: Dict[str, Any]) -> bool:
        try:
            wire.send_frame(state.conn, body,
                            deadline=monotonic() + self.io_timeout)
        except (wire.WireError, OSError):
            return False
        self.tallies["frames_out"] += 1
        if state.session is not None:
            state.session.frames_out += 1
        return True

    def _drop_conn(self, state: _ConnState, selector, conns) -> None:
        conns.pop(state.conn.fileno(), None)
        try:
            selector.unregister(state.conn)
        except (KeyError, ValueError):
            pass
        if state.session is not None and state.session.conn is \
                state.conn:
            # The session survives (leases intact until expiry); only
            # the transport endpoint is gone.
            state.session.conn = None
        try:
            state.conn.close()
        except OSError:  # pragma: no cover
            pass

    def _sweep_stalled(self, selector, conns) -> None:
        # A peer that sent a frame *prefix* and stopped would otherwise
        # hold its buffer open forever: per-frame read deadlines apply
        # to half-open connections too.
        now = monotonic()
        for state in list(conns.values()):
            if state.buffer and now - state.last_progress > \
                    self.io_timeout:
                self.tallies["frame_errors"] += 1
                self._drop_conn(state, selector, conns)

    def _maybe_solo(self, start: float) -> bool:
        """Degradation ladder's last rung: run a shard ourselves.

        Regrant-exhausted shards always; ordinary pending shards only
        when no worker is connected (and either one *was* -- all
        remotes vanished -- or none ever showed within
        ``solo_after``).  Returns True when a shard was executed.
        """
        if not (self._inproc_only or self._pending):
            return False
        if self._inproc_only:
            return self.run_one_inprocess()
        if self._live_sessions():
            return False
        if self._ever_connected or monotonic() - start >= \
                self.solo_after:
            return self.run_one_inprocess()
        return False

    def _collect_worker_tallies(self) -> None:
        self.tallies["workers"] = [
            {"name": s.name, "worker_id": s.worker_id,
             "frames_in": s.frames_in, "frames_out": s.frames_out,
             "reconnects": s.reconnects, "shards": s.shards}
            for _, s in sorted(self._sessions_by_id.items())]


# ---------------------------------------------------------------------------
# Worker
# ---------------------------------------------------------------------------

class ShardWorker:
    """Remote-machine shard executor: dial a :class:`ShardServer`.

    Connects with deterministic-jitter backoff, identifies itself by a
    stable name, then loops request -> execute -> complete until the
    server says ``done`` (or vanishes after we were connected, which
    means the run ended without us).  While a shard executes, a
    heartbeat thread renews its lease; a heartbeat answered with
    ``renewed: false`` means the lease was re-granted elsewhere and the
    worker *abandons* the shard -- its result would be rejected as
    stale anyway.  Any transport failure mid-RPC reconnects (the
    server re-recognizes the name and keeps the worker id) and retries
    up to :data:`RPC_ATTEMPTS` times.

    Scenario code is rebuilt locally from the server's ``welcome``
    config via :class:`repro.scenarios.ScenarioRef` -- workers on
    other machines need the repo, never pickled closures.
    """

    def __init__(self, host: str, port: int, *,
                 name: Optional[str] = None,
                 heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
                 rpc_timeout: float = 10.0,
                 connect_attempts: int = 10,
                 rpc_attempts: int = RPC_ATTEMPTS,
                 backoff_base: float = CONNECT_BACKOFF_BASE,
                 backoff_cap: float = CONNECT_BACKOFF_CAP,
                 sleep: Callable[[float], None] = _real_sleep) -> None:
        self.host = host
        self.port = port
        self.name = name or (f"{socket.gethostname()}-{os.getpid()}-"
                             f"{next(_WORKER_SEQ)}")
        self.heartbeat_interval = heartbeat_interval
        self.rpc_timeout = rpc_timeout
        self.connect_attempts = connect_attempts
        self.rpc_attempts = rpc_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._sleep = sleep
        self._lock = threading.RLock()
        self._sock: Optional[socket.socket] = None
        self._worker_id: Optional[int] = None
        self._config: Optional[Dict[str, Any]] = None
        self._resolved = None
        self.ever_connected = False
        self.shards_completed = 0
        #: Client-side transport tallies (mirrors the server's).
        self.tallies: Dict[str, int] = {
            "frames_out": 0, "frames_in": 0, "retries": 0,
            "reconnects": 0, "abandoned": 0,
        }

    # -- connection management ------------------------------------------

    def _close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass
            self._sock = None

    def _connect(self) -> None:
        """(Re)connect and re-identify, with capped jittered backoff."""
        self._close()
        last_error: Optional[Exception] = None
        for attempt in range(self.connect_attempts):
            if attempt:
                self._sleep(backoff_delay(self.name, attempt - 1,
                                          self.backoff_base,
                                          self.backoff_cap))
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.rpc_timeout)
            except OSError as exc:
                last_error = exc
                continue
            try:
                deadline = monotonic() + self.rpc_timeout
                wire.send_frame(sock, {"type": "hello",
                                       "worker": self.name},
                                deadline=deadline)
                reply = wire.recv_frame(sock, deadline=deadline)
            except (wire.WireError, OSError) as exc:
                last_error = exc
                sock.close()
                continue
            if reply.get("type") != "welcome":
                last_error = ServerGone(
                    f"unexpected hello reply {reply!r}")
                sock.close()
                continue
            if self.ever_connected:
                self.tallies["reconnects"] += 1
            self.ever_connected = True
            self._sock = sock
            self._worker_id = reply["worker_id"]
            self._config = reply.get("config") or {}
            self.tallies["frames_out"] += 1
            self.tallies["frames_in"] += 1
            return
        if self.ever_connected:
            raise ServerGone(f"server unreachable after "
                             f"{self.connect_attempts} attempts: "
                             f"{last_error}")
        raise WorkerUnavailable(
            f"could not reach shard server at {self.host}:{self.port} "
            f"after {self.connect_attempts} attempts: {last_error}")

    def _rpc(self, body: Dict[str, Any]) -> Dict[str, Any]:
        """One request/response exchange, reconnect-and-retry on loss."""
        last_error: Optional[Exception] = None
        for attempt in range(self.rpc_attempts):
            with self._lock:
                try:
                    if self._sock is None:
                        self._connect()
                    assert self._sock is not None
                    frame = dict(body)
                    frame["worker_id"] = self._worker_id
                    deadline = monotonic() + self.rpc_timeout
                    wire.send_frame(self._sock, frame, deadline=deadline)
                    self.tallies["frames_out"] += 1
                    reply = wire.recv_frame(self._sock,
                                            deadline=deadline)
                    self.tallies["frames_in"] += 1
                except (wire.WireError, OSError) as exc:
                    last_error = exc
                    self._close()
                    self.tallies["retries"] += 1
                    continue
            if reply.get("type") == "error":
                # The server rejected the frame itself (desync or
                # malformed): reconnecting re-identifies and resets
                # the stream.
                last_error = wire.WireError(reply.get("reason"))
                with self._lock:
                    self._close()
                self.tallies["retries"] += 1
                continue
            return reply
        raise ServerGone(f"rpc {body.get('type')!r} failed after "
                         f"{self.rpc_attempts} attempts: {last_error}")

    # -- scenario plumbing ----------------------------------------------

    def _scenario(self):
        if self._resolved is None:
            from ..scenarios import ScenarioRef
            config = self._config or {}
            ref = ScenarioRef(config["scenario"],
                              n=config.get("n", 3), x=config.get("x", 2))
            self._resolved = ref.resolve()
        return self._resolved

    def _execute(self, grant: Dict[str, Any]) -> None:
        shard = grant["shard"]
        config = self._config or {}
        stop = threading.Event()
        abandoned = threading.Event()

        def beat() -> None:
            while not stop.wait(self.heartbeat_interval):
                try:
                    reply = self._rpc({"type": "heartbeat",
                                       "shard": shard})
                except (ServerGone, wire.WireError):
                    abandoned.set()
                    return
                if not reply.get("renewed"):
                    abandoned.set()
                    return

        pulse = threading.Thread(target=beat, daemon=True)
        pulse.start()
        error: Optional[str] = None
        value: Any = None
        try:
            sc = self._scenario()
            value = execute_shard(
                sc.build, sc.check, sc.crash_plan_factory,
                prefix=tuple(grant["prefix"]),
                sleep=frozenset(grant["sleep"]),
                max_steps=config.get("max_steps", 24),
                max_runs=config.get("max_runs", 200_000),
                reduction=config.get("reduction", "dpor"),
                state_cache=config.get("state_cache", True))
        except Exception as exc:  # noqa: BLE001 - reported to the server
            error = f"{type(exc).__name__}: {exc}"
        finally:
            stop.set()
            pulse.join()
        if abandoned.is_set():
            # The lease moved on while we executed; the server would
            # reject this completion as stale, so do not bother it.
            self.tallies["abandoned"] += 1
            return
        if error is not None:
            self._rpc({"type": "complete", "shard": shard,
                       "error": error})
            return
        stats, counters = value[0], value[1]
        reply = self._rpc({"type": "complete", "shard": shard,
                           "stats": stats_to_dict(stats),
                           "counters": dict(counters)})
        if reply.get("accepted"):
            self.shards_completed += 1

    def run(self) -> int:
        """Serve until the coordinator finishes; returns shards done.

        Raises :class:`WorkerUnavailable` only when the server was
        *never* reachable; a server that disappears after we joined is
        a normal end of run.
        """
        with self._lock:
            self._connect()
        idle_spins = 0
        try:
            while True:
                reply = self._rpc({"type": "request"})
                kind = reply.get("type")
                if kind == "grant":
                    idle_spins = 0
                    self._execute(reply)
                elif kind == "idle":
                    self._sleep(min(_IDLE_WAIT * (idle_spins + 1), 1.0))
                    idle_spins += 1
                elif kind == "done":
                    break
                else:
                    break  # unknown vocabulary: future server, give up
        except ServerGone:
            pass  # run over (or coordinator died); either way, stop
        finally:
            self._close()
        return self.shards_completed


# ---------------------------------------------------------------------------
# Chaos proxy
# ---------------------------------------------------------------------------

class ChaosProxy:
    """A fault-injecting TCP relay for netshard traffic.

    Sits between workers and the server and mangles the *frame* stream
    (it splits raw bytes on wire headers without decoding payloads):
    per frame and per direction it may drop it, delay it, duplicate
    it, truncate it mid-frame (then cut the connection, as a crashing
    peer would), hold it back one frame (reorder), or disconnect both
    sides cold.  All decisions come from a seeded RNG, so a chaotic
    run is exactly reproducible -- this is ``MessageFaultPlan`` for
    the transport layer, and the ``network`` differential tier runs
    the full exploration through it and still demands bit-for-bit
    deterministic results.
    """

    def __init__(self, upstream_host: str, upstream_port: int, *,
                 listen_host: str = "127.0.0.1", listen_port: int = 0,
                 seed: int = 0, drop: float = 0.0,
                 duplicate: float = 0.0, delay: float = 0.0,
                 delay_seconds: float = 0.02, truncate: float = 0.0,
                 reorder: float = 0.0, disconnect: float = 0.0) -> None:
        self.upstream = (upstream_host, upstream_port)
        self.listen_host = listen_host
        self.listen_port = listen_port
        self.seed = seed
        self.rates = {"drop": drop, "duplicate": duplicate,
                      "delay": delay, "truncate": truncate,
                      "reorder": reorder, "disconnect": disconnect}
        self.delay_seconds = delay_seconds
        #: Count of injected faults by kind (tests assert chaos fired).
        self.injected: Dict[str, int] = {kind: 0 for kind in self.rates}
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._stopping = threading.Event()
        self._conn_seq = itertools.count()

    def start(self) -> Tuple[str, int]:
        """Bind, start relaying in background threads; returns address."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.listen_host, self.listen_port))
        listener.listen(16)
        listener.settimeout(0.1)
        self._listener = listener
        self.listen_port = listener.getsockname()[1]
        acceptor = threading.Thread(target=self._accept_loop, daemon=True)
        acceptor.start()
        self._threads.append(acceptor)
        return self.listen_host, self.listen_port

    def stop(self) -> None:
        """Stop accepting and tear the relay threads down."""
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
        for thread in self._threads:
            thread.join(timeout=2.0)

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                client, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                upstream = socket.create_connection(self.upstream,
                                                    timeout=5.0)
            except OSError:
                client.close()
                continue
            conn_id = next(self._conn_seq)
            for label, src, dst in (("c2s", client, upstream),
                                    ("s2c", upstream, client)):
                pump = threading.Thread(
                    target=self._pump,
                    args=(src, dst, f"{conn_id}:{label}"),
                    daemon=True)
                pump.start()
                self._threads.append(pump)

    def _pump(self, src: socket.socket, dst: socket.socket,
              stream_key: str) -> None:
        import random
        rng = random.Random(f"{self.seed}:{stream_key}")
        buffer = b""
        held: List[bytes] = []
        src.settimeout(0.2)
        try:
            while not self._stopping.is_set():
                try:
                    data = src.recv(65536)
                except socket.timeout:
                    continue
                except OSError:
                    break
                if not data:
                    break
                buffer += data
                frames, buffer = wire.split_frames(buffer)
                for frame in frames:
                    fault = self._roll(rng)
                    if fault == "drop":
                        continue
                    if fault == "duplicate":
                        dst.sendall(frame)
                        dst.sendall(frame)
                    elif fault == "delay":
                        _real_sleep(self.delay_seconds)
                        dst.sendall(frame)
                    elif fault == "truncate":
                        dst.sendall(frame[:max(1, len(frame) // 2)])
                        raise _Cut()
                    elif fault == "disconnect":
                        raise _Cut()
                    elif fault == "reorder":
                        held.append(frame)
                        continue
                    else:
                        dst.sendall(frame)
                    while held:
                        dst.sendall(held.pop(0))
        except (_Cut, OSError):
            pass
        finally:
            for sock in (src, dst):
                try:
                    sock.close()
                except OSError:  # pragma: no cover
                    pass

    def _roll(self, rng) -> Optional[str]:
        point = rng.random()
        cumulative = 0.0
        for kind, rate in self.rates.items():
            cumulative += rate
            if point < cumulative:
                self.injected[kind] += 1
                return kind
        return None


class _Cut(Exception):
    """Internal: a chaos fault severed this relay direction."""
