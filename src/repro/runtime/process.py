"""Process handles and statuses for the cooperative-step runtime.

A *process* is a Python generator produced by an algorithm's ``program``
factory.  The scheduler owns one :class:`ProcessHandle` per process and
advances the generator one yielded operation at a time.  A process that
returns (``StopIteration``) has *decided* the returned value; crashing and
permanent blocking are the other terminal outcomes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from .ops import Invocation, SpinOp


class ProcessStatus(enum.Enum):
    """Lifecycle states of a simulated process."""

    RUNNING = "running"
    DECIDED = "decided"
    CRASHED = "crashed"
    BLOCKED = "blocked"  # deadlock detector proved it can never progress
    FAILED = "failed"    # raised an exception (a bug in process code)


#: Sentinel meaning "process finished without producing a decision value".
NO_DECISION = object()


@dataclass(slots=True)
class ProcessHandle:
    """Scheduler-side state of one process."""

    pid: int
    generator: Generator[Any, Any, Any]
    status: ProcessStatus = ProcessStatus.RUNNING
    decision: Any = NO_DECISION
    steps_taken: int = 0
    #: The operation the process is currently waiting to execute, if any.
    pending: Optional[Any] = None
    #: Result of the last executed op, to be sent into the generator.
    inbox: Any = None
    started: bool = False
    #: Consecutive failed spin steps (for deadlock detection).
    spin_failures: int = 0
    #: Exception captured when status == FAILED.
    error: Optional[BaseException] = None

    @property
    def alive(self) -> bool:
        return self.status is ProcessStatus.RUNNING

    @property
    def decided(self) -> bool:
        return (self.status is ProcessStatus.DECIDED
                and self.decision is not NO_DECISION)

    def advance(self) -> Optional[Any]:
        """Resume the generator until its next yield.

        Returns the newly yielded operation, or ``None`` if the generator
        finished (in which case status/decision are updated).  Exceptions
        raised by process code mark the process FAILED and are re-raised by
        the scheduler as a hard error: process code is trusted library code,
        a crash there is a bug, not a model event.
        """
        try:
            if self.started:
                op = self.generator.send(self.inbox)
            else:
                self.started = True
                op = next(self.generator)
        except StopIteration as stop:
            self.status = ProcessStatus.DECIDED
            self.decision = (stop.value if stop.value is not None
                             else NO_DECISION)
            self.pending = None
            return None
        except BaseException as exc:  # noqa: BLE001 - recorded then re-raised
            self.status = ProcessStatus.FAILED
            self.error = exc
            self.pending = None
            raise
        self.pending = op
        return op

    def crash(self) -> None:
        self.status = ProcessStatus.CRASHED
        self.pending = None
        self.generator.close()

    def mark_blocked(self) -> None:
        self.status = ProcessStatus.BLOCKED
        self.generator.close()


def describe_pending(op: Any) -> str:
    """Human-readable description of a pending op (for traces and errors)."""
    if isinstance(op, SpinOp):
        return repr(op)
    if isinstance(op, Invocation):
        return repr(op)
    return f"<non-schedulable op {op!r}>"
