"""Failure-detector oracles (paper Section 1.3, "Boosting the
computability power with failure detectors").

A failure detector is an oracle each process can query; its answers
carry information about crashes that pure shared memory cannot provide
(Chandra-Hadzilacos-Toueg).  In this runtime a detector is a special
read-only shared object that the run harness *binds* to the scheduler, so
its answers can depend on which processes have crashed and on the global
step count.

Eventual ("◇") guarantees are modeled with an explicit stabilization
step: before it, answers may be adversarially wrong (configurable
rotation); from it on, answers satisfy the detector's stable property.
Within any finite run whose crashes are finite this realizes the
eventual semantics exactly.

Detectors do not have a consensus number -- they are *model enrichments*:
ASM(n, t, x) + Ω is a strictly different (stronger) model than
ASM(n, t, x).  The ASM validator treats them as permitted enrichments
(`oracle = True`) and algorithms using them document the enrichment in
their name.
"""

from __future__ import annotations

from abc import abstractmethod
from typing import Optional, Set

from ..memory.base import SharedObject


class OracleContext:
    """What a detector may observe: crash state and global time."""

    def __init__(self, scheduler) -> None:
        self._scheduler = scheduler

    @property
    def step(self) -> int:
        return self._scheduler.steps

    def crashed(self) -> Set[int]:
        from ..runtime.process import ProcessStatus
        return {pid for pid, handle in self._scheduler.handles.items()
                if handle.status is ProcessStatus.CRASHED}

    def alive(self) -> Set[int]:
        """Processes that have not crashed *yet*.

        A detector's "correct process" promises are stated about the
        whole run; because crashes are finite, properties computed from
        the not-yet-crashed set hold from some point on, which is all an
        eventual detector promises.
        """
        return set(self._scheduler.handles) - self.crashed()


class FailureDetector(SharedObject):
    """Base class: a read-only oracle bound to the running scheduler."""

    #: marks the object as a model enrichment rather than a data object.
    oracle = True
    consensus_number = 1  # as a *data* object it stores nothing
    READONLY = frozenset({"query"})

    def __init__(self, name: str) -> None:
        super().__init__(name, None)
        self._context: Optional[OracleContext] = None
        self.query_count = 0

    def bind(self, context: OracleContext) -> None:
        self._context = context

    @property
    def context(self) -> OracleContext:
        if self._context is None:
            raise RuntimeError(
                f"failure detector {self.name!r} was never bound to a "
                f"scheduler -- run it through run_processes/run_algorithm")
        return self._context

    def op_query(self, pid: int):
        self.query_count += 1
        return self.output(pid)

    @abstractmethod
    def output(self, pid: int):
        """The detector's current answer for ``pid``."""
