"""Failure-detector oracles: the Section 1.3 boosting enrichments."""

from .base import FailureDetector, OracleContext
from .omega import OmegaLeader, OmegaX

__all__ = ["FailureDetector", "OracleContext", "OmegaLeader", "OmegaX"]
