"""The Ω family of leader oracles.

* :class:`OmegaLeader` -- the classic Ω (= Ω1): outputs one process id;
  eventually the same *correct* id at every process (Chandra-Hadzilacos-
  Toueg; the weakest failure detector for consensus).
* :class:`OmegaX` -- Ωx (Neiger 1995; paper Section 1.3): outputs a set
  of x processes; eventually the same set at every correct process, and
  that set contains at least one correct process.  Guerraoui & Kuznetsov
  showed Ωx is the weakest detector boosting ASM(n, n-1, x) to consensus
  number x+1.

Both are *eventual* oracles: before ``stabilize_after`` global steps the
output rotates adversarially over all processes (including crashed
ones); from then on it is computed from the not-yet-crashed set, which
settles once crashes stop, realizing the ◇ semantics within a finite
run.
"""

from __future__ import annotations

from typing import Tuple

from .base import FailureDetector


class OmegaLeader(FailureDetector):
    """Ω: an eventually-accurate, eventually-stable leader oracle."""

    def __init__(self, name: str = "omega", stabilize_after: int = 0,
                 rotation_period: int = 7) -> None:
        super().__init__(name)
        if stabilize_after < 0 or rotation_period < 1:
            raise ValueError("stabilize_after >= 0, rotation_period >= 1")
        self.stabilize_after = stabilize_after
        self.rotation_period = rotation_period

    def output(self, pid: int) -> int:
        ctx = self.context
        everyone = sorted(set(ctx.alive()) | ctx.crashed())
        if ctx.step < self.stabilize_after:
            # Adversarial phase: rotate over everyone, possibly naming
            # crashed processes and disagreeing over time.
            return everyone[(ctx.step // self.rotation_period)
                            % len(everyone)]
        alive = sorted(ctx.alive())
        if not alive:
            return everyone[0]
        return alive[0]


class OmegaX(FailureDetector):
    """Ωx: eventually one common set of x processes with a correct one."""

    def __init__(self, name: str = "omega_x", x: int = 1,
                 stabilize_after: int = 0,
                 rotation_period: int = 7) -> None:
        super().__init__(name)
        if x < 1:
            raise ValueError("x must be >= 1")
        if stabilize_after < 0 or rotation_period < 1:
            raise ValueError("stabilize_after >= 0, rotation_period >= 1")
        self.x = x
        self.stabilize_after = stabilize_after
        self.rotation_period = rotation_period

    def output(self, pid: int) -> Tuple[int, ...]:
        ctx = self.context
        everyone = sorted(set(ctx.alive()) | ctx.crashed())
        x = min(self.x, len(everyone))
        if ctx.step < self.stabilize_after:
            start = (ctx.step // self.rotation_period) % len(everyone)
            window = [everyone[(start + i) % len(everyone)]
                      for i in range(x)]
            return tuple(sorted(window))
        alive = sorted(ctx.alive())
        if not alive:
            return tuple(everyone[:x])
        # One correct process (the smallest alive), padded with the
        # globally smallest ids for set stability.
        chosen = {alive[0]}
        for candidate in everyone:
            if len(chosen) == x:
                break
            chosen.add(candidate)
        return tuple(sorted(chosen))
