"""Named exhaustive-checking scenarios for ``python -m repro check``.

Each scenario packages a small, fully-checkable configuration of one of
the paper's agreement objects -- a ``build()`` factory, the safety
property to assert on every complete run, an optional crash plan, and
exploration bounds -- so the CLI (and the test suite) can run bounded
model checking over ALL interleavings with one command.

The safety properties are the paper's:

* ``safe-agreement``   -- agreement + validity of Figure 1's
  safe-agreement (every process decides the same proposed value);
* ``adopt-commit``     -- coherence + validity (+ convergence on
  unanimous inputs) of the adopt-commit object;
* ``x-safe-agreement`` -- agreement + validity of Figure 6's
  x-safe-agreement under one mid-propose crash: with x = 2 a single
  crash must NOT block the survivors (the multiplicative phenomenon --
  killing the object would cost the adversary x crashes);
* ``queue-2cons``      -- agreement + validity of Herlihy's queue-based
  2-process consensus.

``broken-demo`` is deliberately buggy (a "consensus" from bare
registers, which Herlihy's hierarchy says cannot work): it exists to
demonstrate counterexample shrinking and the nonzero CLI exit path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from .agreement import SafeAgreementFactory, XSafeAgreementFactory
from .agreement.adopt_commit import COMMIT, AdoptCommit, adopt_commit_specs
from .memory import BOTTOM, ObjectStore, RegisterArray, build_store, make_spec
from .objects import LOSER, WINNER, consensus2_from_queue
from .runtime import CrashPlan, ObjectProxy, RunResult


@dataclass
class CheckScenario:
    """One named exhaustive-checking configuration."""

    name: str
    description: str
    build: Callable[[], Tuple[Dict[int, Generator], Any]]
    check: Callable[[RunResult], None]
    crash_plan_factory: Optional[Callable[[], CrashPlan]] = None
    max_steps: int = 24
    max_runs: int = 500_000
    #: Set on the deliberately-broken demo scenario.
    expect_violation: bool = False


# ---------------------------------------------------------------------------
# safe-agreement
# ---------------------------------------------------------------------------

def _safe_agreement(n: int) -> CheckScenario:
    def build():
        factory = SafeAgreementFactory(n)
        store = ObjectStore()
        store.add_all(factory.shared_objects())

        def participant(i):
            inst = factory.instance("k")
            yield from inst.propose(i, f"v{i}")
            decided = yield from inst.decide(i)
            return decided

        return {i: participant(i) for i in range(n)}, store

    proposals = {f"v{i}" for i in range(n)}

    def check(result: RunResult) -> None:
        assert not result.deadlocked, \
            f"crash-free safe-agreement deadlocked: {result.summary()}"
        assert result.decided_pids == set(range(n)), \
            f"not everyone decided: {result.summary()}"
        assert len(result.decided_values) == 1, \
            f"agreement violated: {sorted(result.decided_values)}"
        assert result.decided_values <= proposals, \
            f"validity violated: {sorted(result.decided_values)}"

    return CheckScenario(
        name="safe-agreement",
        description=(f"Figure 1 safe-agreement, {n} processes, no "
                     f"crashes: agreement + validity + termination"),
        build=build, check=check, max_steps=6 * n + 2)


# ---------------------------------------------------------------------------
# adopt-commit
# ---------------------------------------------------------------------------

def _adopt_commit(n: int) -> CheckScenario:
    values = ["a" if i == 0 else "b" for i in range(n)]

    def build():
        store = build_store(adopt_commit_specs(n))

        def proposer(pid):
            out = yield from AdoptCommit("k", n).propose(pid, values[pid])
            return out

        return {i: proposer(i) for i in range(n)}, store

    def check(result: RunResult) -> None:
        outs = list(result.decisions.values())
        assert result.decided_pids == set(range(n)), \
            f"adopt-commit is wait-free, yet: {result.summary()}"
        committed = {v for tag, v in outs if tag == COMMIT}
        assert len(committed) <= 1, f"coherence violated: {outs}"
        if committed:
            winner = committed.pop()
            assert all(v == winner for _, v in outs), \
                f"coherence violated: {outs}"
        assert {v for _, v in outs} <= set(values), \
            f"validity violated: {outs}"

    return CheckScenario(
        name="adopt-commit",
        description=(f"adopt-commit, {n} processes, divergent proposals: "
                     f"coherence + validity"),
        build=build, check=check, max_steps=4 * n + 2)


# ---------------------------------------------------------------------------
# x-safe-agreement
# ---------------------------------------------------------------------------

def _x_safe_agreement(n: int, x: int) -> CheckScenario:
    def build():
        factory = XSafeAgreementFactory(n, x)
        store = ObjectStore()
        store.add_all(factory.shared_objects())

        def participant(i):
            inst = factory.instance("k")
            yield from inst.propose(i, f"v{i}")
            decided = yield from inst.decide(i)
            return decided

        return {i: participant(i) for i in range(n)}, store

    proposals = {f"v{i}" for i in range(n)}
    survivors = set(range(1, n))

    def check(result: RunResult) -> None:
        # p0 crashes mid-propose; with x = 2 that is fewer than x crashes
        # inside propose, so every correct process must still decide.
        assert not result.deadlocked, \
            (f"one crash (< x={x}) blocked x-safe-agreement: "
             f"{result.summary()}")
        assert result.decided_pids == survivors, \
            f"survivors did not all decide: {result.summary()}"
        assert len(result.decided_values) == 1, \
            f"agreement violated: {sorted(result.decided_values)}"
        assert result.decided_values <= proposals, \
            f"validity violated: {sorted(result.decided_values)}"

    return CheckScenario(
        name="x-safe-agreement",
        description=(f"Figure 6 x-safe-agreement, {n} processes, x={x}, "
                     f"p0 crashes mid-propose: survivors still agree"),
        build=build, check=check,
        crash_plan_factory=lambda: CrashPlan.at_own_step({0: 2}),
        max_steps=40)


# ---------------------------------------------------------------------------
# queue-based 2-consensus
# ---------------------------------------------------------------------------

def _queue_2cons() -> CheckScenario:
    def build():
        store = build_store([
            make_spec("queue", "q", initial=(WINNER, LOSER)),
            make_spec("register_array", "ann", size=2),
        ])
        q, ann = ObjectProxy("q"), ObjectProxy("ann")

        def prog(pid):
            decided = yield from consensus2_from_queue(
                q, ann, pid, 1 - pid, f"v{pid}")
            return decided

        return {i: prog(i) for i in range(2)}, store

    def check(result: RunResult) -> None:
        assert result.decided_pids == {0, 1}, result.summary()
        assert len(result.decided_values) == 1, \
            f"agreement violated: {sorted(result.decided_values)}"
        assert result.decided_values <= {"v0", "v1"}, \
            f"validity violated: {sorted(result.decided_values)}"

    return CheckScenario(
        name="queue-2cons",
        description=("Herlihy queue-based 2-process consensus: "
                     "agreement + validity"),
        build=build, check=check, max_steps=12)


# ---------------------------------------------------------------------------
# broken-demo: registers cannot solve consensus (Herlihy 1991) -- the
# explorer finds the disagreeing schedule and shrinks it.
# ---------------------------------------------------------------------------

def _broken_demo() -> CheckScenario:
    reg = ObjectProxy("reg")

    def build():
        store = ObjectStore()
        store.add(RegisterArray("reg", 2))

        def prog(pid):
            yield reg.write(pid, f"v{pid}")
            mine = yield reg.read(pid)
            other = yield reg.read(1 - pid)
            # Bogus tie-break: "first writer wins" is not observable from
            # registers, so both processes can believe they were first.
            return mine if other is BOTTOM else min(mine, other, key=str)

        return {i: prog(i) for i in range(2)}, store

    def check(result: RunResult) -> None:
        assert len(result.decided_values) == 1, \
            f"agreement violated: {sorted(result.decided_values)}"

    return CheckScenario(
        name="broken-demo",
        description=("DELIBERATELY BUGGY register-only 'consensus': "
                     "demonstrates counterexample shrinking"),
        build=build, check=check, max_steps=10,
        expect_violation=True)


def check_scenarios(n: int = 3, x: int = 2) -> Dict[str, CheckScenario]:
    """The scenario registry, parameterized by process count.

    ``n`` sizes safe-agreement and adopt-commit; x-safe-agreement always
    runs ``n`` processes with consensus-number-``x`` objects; queue-2cons
    and broken-demo are inherently 2-process.
    """
    return {
        scenario.name: scenario
        for scenario in (
            _safe_agreement(n),
            _adopt_commit(n),
            _x_safe_agreement(n, x),
            _queue_2cons(),
            _broken_demo(),
        )
    }


#: Scenario names suitable for ``check all`` (the sound ones).
SOUND_SCENARIOS: List[str] = [
    "safe-agreement", "adopt-commit", "x-safe-agreement", "queue-2cons"]


def _parse_generated_name(name: str) -> Tuple[int, int]:
    """Split ``generated:SEED:INDEX`` into its integer pair."""
    try:
        _, seed_text, index_text = name.split(":")
        return int(seed_text), int(index_text)
    except ValueError:
        raise KeyError(
            f"malformed generated scenario name {name!r} "
            f"(expected 'generated:SEED:INDEX')") from None


def build_scenario(name: str, n: int = 3, x: int = 2) -> CheckScenario:
    """Rebuild one registry scenario by name (for worker processes).

    Scenario ``build``/``check`` callables close over local state and do
    not pickle; a ``(name, n, x)`` triple does.  Names in the
    ``generated:SEED:INDEX`` namespace resolve through the generative
    sweep's grammar (:func:`repro.generative.generated_scenario`) --
    the synthesized configuration is a pure function of the two
    integers, so workers rebuild it exactly; the ``n``/``x`` sizing
    arguments are ignored for that namespace (the tape encodes its own
    sizes).  Raises ``KeyError`` for unknown names, listing what
    exists.
    """
    if name.startswith("generated:"):
        from .generative import generated_scenario
        seed, index = _parse_generated_name(name)
        return generated_scenario(seed, index)
    registry = check_scenarios(n=n, x=x)
    if name not in registry:
        raise KeyError(f"unknown scenario {name!r} "
                       f"(expected one of {sorted(registry)}, or "
                       f"'generated:SEED:INDEX')")
    return registry[name]


@dataclass(frozen=True)
class ScenarioRef:
    """A picklable by-name reference to a registry scenario.

    Parallel exploration ships this to worker processes instead of the
    scenario's closures; each worker calls :meth:`resolve` once to
    rebuild the identical scenario locally.
    """

    name: str
    n: int = 3
    x: int = 2

    def resolve(self) -> CheckScenario:
        return build_scenario(self.name, n=self.n, x=self.x)
