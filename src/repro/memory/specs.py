"""Declarative object specifications.

An :class:`ObjectSpec` names a shared object, its kind and its parameters,
without instantiating it.  Algorithms publish their object requirements as
specs so that

* a direct run can build a fresh store (`build_store`), and
* a BG-style simulation can *translate* operations on the object instead of
  materializing it (the simulated objects never exist in the target model;
  see `repro.bg.translate`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, Optional, Tuple

from ..memory.base import SharedObject
from ..memory.families import (RegisterFamily, SnapshotFamily, TASFamily,
                               XConsFamily)
from ..memory.registers import AtomicRegister, RegisterArray
from ..memory.snapshot import SnapshotObject
from ..memory.store import ObjectStore
from ..objects.compare_and_swap import CompareAndSwapObject
from ..objects.consensus import XConsensusObject
from ..objects.kset import KSetObject
from ..objects.queue_stack import SharedQueue, SharedStack
from ..objects.test_and_set import TestAndSetObject

#: Object kinds understood by the builder and the simulation translator.
KINDS = frozenset({
    "snapshot", "snapshot_family", "register", "register_array",
    "register_family", "xcons", "tas", "tas_family", "xcons_family",
    "kset", "cas", "queue", "stack", "omega", "omega_x",
})


@dataclass(frozen=True)
class ObjectSpec:
    """Declarative description of one shared object."""

    kind: str
    name: str
    ports: Optional[FrozenSet[int]] = None
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown object kind {self.kind!r}")

    @property
    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def param(self, key: str, default: Any = None) -> Any:
        return self.param_dict.get(key, default)

    @property
    def consensus_number(self) -> float:
        """Consensus number of the described object (for model checks)."""
        return build_object(self).consensus_number


def make_spec(kind: str, name: str, ports: Optional[Iterable[int]] = None,
              **params: Any) -> ObjectSpec:
    """Ergonomic ObjectSpec constructor."""
    return ObjectSpec(
        kind=kind,
        name=name,
        ports=frozenset(ports) if ports is not None else None,
        params=tuple(sorted(params.items())),
    )


def build_object(spec: ObjectSpec) -> SharedObject:
    """Instantiate a fresh shared object from its spec."""
    p = spec.param_dict
    if spec.kind == "snapshot":
        return SnapshotObject(spec.name, size=p["size"],
                              enforce_owner=p.get("enforce_owner", True),
                              owner_map=p.get("owner_map"))
    if spec.kind == "snapshot_family":
        return SnapshotFamily(spec.name, size=p["size"],
                              enforce_owner=p.get("enforce_owner", True))
    if spec.kind == "register":
        return AtomicRegister(spec.name, writer=p.get("writer"),
                              ports=spec.ports)
    if spec.kind == "register_array":
        return RegisterArray(spec.name, size=p["size"],
                             single_writer=p.get("single_writer", False))
    if spec.kind == "register_family":
        return RegisterFamily(spec.name)
    if spec.kind == "xcons":
        if spec.ports is None:
            raise ValueError(f"xcons {spec.name!r} needs a static port set")
        return XConsensusObject(spec.name, spec.ports)
    if spec.kind == "tas":
        return TestAndSetObject(spec.name, ports=spec.ports)
    if spec.kind == "tas_family":
        return TASFamily(spec.name)
    if spec.kind == "xcons_family":
        return XConsFamily(spec.name, subsets=p["subsets"])
    if spec.kind == "kset":
        if spec.ports is None:
            raise ValueError(f"kset {spec.name!r} needs a static port set")
        return KSetObject(spec.name, spec.ports, ell=p["ell"])
    if spec.kind == "cas":
        return CompareAndSwapObject(spec.name)
    if spec.kind == "omega":
        from ..detectors.omega import OmegaLeader
        return OmegaLeader(spec.name,
                           stabilize_after=p.get("stabilize_after", 0),
                           rotation_period=p.get("rotation_period", 7))
    if spec.kind == "omega_x":
        from ..detectors.omega import OmegaX
        return OmegaX(spec.name, x=p.get("x", 1),
                      stabilize_after=p.get("stabilize_after", 0),
                      rotation_period=p.get("rotation_period", 7))
    if spec.kind == "queue":
        return SharedQueue(spec.name, initial=p.get("initial", ()))
    if spec.kind == "stack":
        return SharedStack(spec.name, initial=p.get("initial", ()))
    raise AssertionError(f"unhandled kind {spec.kind!r}")


def build_store(specs: Iterable[ObjectSpec]) -> ObjectStore:
    """Fresh store containing one object per spec."""
    store = ObjectStore()
    for spec in specs:
        store.add(build_object(spec))
    return store
