"""Shared-object protocol for the atomic-step runtime.

Every base object the scheduler can execute operations on derives from
:class:`SharedObject`.  A base object's methods run atomically (the scheduler
serializes them), so implementations are plain sequential Python -- the model
guarantees linearizability, mirroring how the paper assumes atomic snapshot
objects and atomic consensus-number-x objects as primitives.

Objects declare:

* ``consensus_number`` -- their Herlihy consensus number, used by the
  ASM(n, t, x) model validator (`repro.core.model`) to check that a store
  only contains objects the model permits.
* ``ports`` -- the statically-defined set of processes allowed to access the
  object, or ``None`` for unrestricted access (read/write memory).  The
  paper requires consensus-number-x objects to be accessible by at most x
  statically defined processes (Section 2.3).
* ``READONLY`` -- method names that cannot change state; only these may be
  used in busy-wait :class:`~repro.runtime.ops.SpinOp` steps.
* ``footprint(pid, method, args)`` -- the read/write
  :class:`~repro.runtime.ops.Footprint` of one operation, the independence
  relation driving the DPOR explorer (`repro.runtime.dpor`).  The base
  implementation is conservative (whole-object); objects with addressable
  sub-state (register arrays, snapshots, families) refine it per location.
"""

from __future__ import annotations

from abc import ABC
from typing import Any, FrozenSet, Optional, Tuple

from ..runtime.ops import Footprint


class _Bottom:
    """The default value ⊥ of the paper's shared-memory entries."""

    _instance: Optional["_Bottom"] = None

    def __new__(cls) -> "_Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"

    def __bool__(self) -> bool:
        return False

    def __reduce__(self):
        return (_Bottom, ())


#: Singleton "undefined" value, rendered as ⊥.
BOTTOM = _Bottom()


class _MissingState:
    """Sentinel for 'this location has no semantic default value'.

    Returned by the base :meth:`SharedObject.audit_default`; lazily
    populated objects (families) override the hook with their real
    default (⊥-equivalents) so that materializing an absent instance is
    not mistaken for a state change by the footprint auditor.
    """

    _instance: Optional["_MissingState"] = None

    def __new__(cls) -> "_MissingState":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<absent>"

    def __reduce__(self):
        return (_MissingState, ())


#: Singleton "location does not exist" value used by the footprint auditor.
MISSING_STATE = _MissingState()


class PortViolation(RuntimeError):
    """A process accessed an object outside its static port set."""


class ProtocolViolation(RuntimeError):
    """An object's sequential usage contract was broken (e.g. a one-shot
    operation invoked twice by the same process)."""


class SharedObject(ABC):
    """Base class for atomic shared objects."""

    #: Herlihy consensus number of this object type; subclasses override.
    consensus_number: float = 1
    #: Read-only methods, usable in spin steps.
    READONLY: FrozenSet[str] = frozenset()

    def __init__(self, name: str,
                 ports: Optional[FrozenSet[int]] = None) -> None:
        self.name = name
        self.ports = frozenset(ports) if ports is not None else None

    # ------------------------------------------------------------------
    def apply(self, pid: int, method: str, args: Tuple[Any, ...]) -> Any:
        """Execute ``method(*args)`` atomically on behalf of ``pid``."""
        self.check_port(pid, method)
        handler = getattr(self, f"op_{method}", None)
        if handler is None:
            raise ProtocolViolation(
                f"object {self.name!r} ({type(self).__name__}) has no "
                f"operation {method!r}")
        return handler(pid, *args)

    def check_port(self, pid: int, method: str) -> None:
        """Raise PortViolation if pid is outside the static port set."""
        if self.ports is not None and pid not in self.ports:
            raise PortViolation(
                f"p{pid} accessed {self.name!r}, whose static port set "
                f"is {sorted(self.ports)}")

    def is_readonly(self, method: str) -> bool:
        """May this method be used in busy-wait (spin) steps?"""
        return method in self.READONLY

    def footprint(self, pid: int, method: str,
                  args: Tuple[Any, ...]) -> Footprint:
        """Read/write footprint of ``method(*args)`` invoked by ``pid``.

        The default is maximally conservative: read-only methods read the
        whole object, everything else reads *and* writes it (a mutating
        method such as compare&swap typically also observes prior state).
        Subclasses refine this to per-location footprints; refinements
        must only ever *shrink* the footprint of what the operation truly
        touches, never drop an accessed location.
        """
        if self.is_readonly(method):
            return Footprint.read(self.name)
        return Footprint.readwrite(self.name)

    # -- footprint-audit hooks -----------------------------------------
    #: Attributes that are observability instrumentation (step counters,
    #: static configuration), not shared protocol state.  The default
    #: :meth:`audit_state` omits them so that e.g. a snapshot bumping its
    #: snapshot_count is not reported as a write by a read-only method.
    AUDIT_EXCLUDE: FrozenSet[str] = frozenset({"name", "ports"})

    def audit_state(self) -> dict:
        """Map of intra-object location key -> current state fragment.

        The footprint auditor (`repro.lint.audit`) diffs this map around
        every executed operation and checks the changed keys against the
        operation's *declared* :meth:`footprint`.  Keys must use the same
        addressing scheme as the footprints the object declares (cell
        indices, family ``(key, index)`` tuples, ... or :data:`WHOLE`);
        values must be deepcopy-able and comparable with ``==``.  The
        default exposes the whole instance dictionary (minus
        :data:`AUDIT_EXCLUDE`) under the :data:`WHOLE` key, matching the
        conservative default footprint; objects with refined per-location
        footprints override this with the matching per-location view.
        """
        from ..runtime.ops import WHOLE
        return {WHOLE: {k: v for k, v in vars(self).items()
                        if k not in self.AUDIT_EXCLUDE}}

    def audit_set(self, key: Any, value: Any) -> bool:
        """Overwrite the state at location ``key`` with ``value``.

        Used by the auditor's read-soundness pass to poison locations an
        operation did *not* declare as read before replaying it on a
        copy.  Returns False when the object cannot address ``key``
        (the auditor then skips perturbing that location).
        """
        return False

    def audit_default(self, key: Any) -> Any:
        """Semantic value of a location absent from :meth:`audit_state`.

        Lazily-populated objects return their ⊥-equivalent here so the
        auditor treats 'instance not yet materialized' and 'instance
        holding only defaults' as the same state.
        """
        return MISSING_STATE

    # -- state-fingerprint hook ----------------------------------------
    #: Footprints must be pure functions of ``(pid, method, args)`` for
    #: a fixed object configuration; the DPOR engine memoizes them per
    #: exploration on that assumption.  An object whose footprint
    #: depends on mutable state must set this to False to opt out.
    FOOTPRINT_PURE: bool = True

    def fingerprint_state(self) -> dict:
        """Location -> value map hashed into the DPOR state fingerprint.

        Defaults to :meth:`audit_state` -- the audited view *is* the
        semantically observable state, so the state cache
        (:mod:`repro.runtime.fingerprint`) reuses it.  Override only
        when an object carries run-relevant state the audit view elides;
        entries equal to :meth:`audit_default` are normalised away, so
        lazily materialising a default never changes the fingerprint.
        """
        return self.audit_state()

    def __repr__(self) -> str:
        ports = "all" if self.ports is None else sorted(self.ports)
        return (f"{type(self).__name__}({self.name!r}, ports={ports}, "
                f"cn={self.consensus_number})")
