"""Shared-memory substrate: registers, snapshot objects, object families,
declarative specs, and the object store."""

from .afek_snapshot import AfekSnapshot
from .base import (BOTTOM, MISSING_STATE, PortViolation, ProtocolViolation,
                   SharedObject)
from .families import (RegisterFamily, SnapshotFamily, TASFamily,
                       XConsFamily)
from .immediate_snapshot import (ImmediateSnapshot,
                                 check_immediate_snapshot_views)
from .registers import AtomicRegister, RegisterArray
from .snapshot import SnapshotObject
from .specs import ObjectSpec, build_object, build_store, make_spec
from .store import ObjectStore, UnknownObject

__all__ = [
    "AfekSnapshot",
    "BOTTOM", "MISSING_STATE", "PortViolation", "ProtocolViolation",
    "SharedObject",
    "RegisterFamily", "SnapshotFamily", "TASFamily", "XConsFamily",
    "ImmediateSnapshot", "check_immediate_snapshot_views",
    "AtomicRegister", "RegisterArray",
    "SnapshotObject",
    "ObjectSpec", "build_object", "build_store", "make_spec",
    "ObjectStore", "UnknownObject",
]
