"""Atomic read/write registers.

Registers have consensus number 1 (Herlihy 1991): they are the weakest
objects of the ASM hierarchy, permitted in every ASM(n, t, x) model.

:class:`AtomicRegister` is multi-writer/multi-reader by default; pass
``writer`` to restrict writes to one process (single-writer registers, the
building block of the Afek et al. snapshot construction in
`repro.memory.afek_snapshot`).
"""

from __future__ import annotations

from typing import Any, FrozenSet, Optional, Tuple

from ..runtime.ops import WHOLE, Footprint
from .base import BOTTOM, PortViolation, SharedObject


class AtomicRegister(SharedObject):
    """A linearizable read/write register."""

    consensus_number = 1
    READONLY = frozenset({"read"})
    #: writer is static configuration, write_count instrumentation:
    #: neither is shared protocol state (audit_state exposes only
    #: self.value), so the footprint analyzer ignores accesses to them.
    AUDIT_EXCLUDE = SharedObject.AUDIT_EXCLUDE | frozenset(
        {"writer", "write_count"})

    def __init__(self, name: str, initial: Any = BOTTOM,
                 writer: Optional[int] = None,
                 ports: Optional[FrozenSet[int]] = None) -> None:
        super().__init__(name, ports)
        self.value = initial
        self.writer = writer
        self.write_count = 0

    def op_read(self, pid: int) -> Any:
        return self.value

    def op_write(self, pid: int, value: Any) -> None:
        if self.writer is not None and pid != self.writer:
            raise PortViolation(
                f"p{pid} wrote single-writer register {self.name!r} "
                f"owned by p{self.writer}")
        self.value = value
        self.write_count += 1

    def footprint(self, pid: int, method: str,
                  args: Tuple[Any, ...]) -> Footprint:
        # A blind register write observes nothing: write-only footprint,
        # so two writes conflict but a write commutes with nothing else.
        if method == "write":
            return Footprint.write(self.name)
        return super().footprint(pid, method, args)

    def audit_state(self):
        # The register is one location; write_count is instrumentation.
        return {WHOLE: self.value}

    def audit_set(self, key, value) -> bool:
        if key is not WHOLE:
            return False
        self.value = value
        return True


class RegisterArray(SharedObject):
    """An array of atomic registers behind one object name.

    Each cell is independently read/written; a read or write of one cell is
    one atomic step.  There is deliberately *no* atomic multi-cell read --
    that is what snapshot objects are for, and keeping the distinction
    explicit is what makes the Afek et al. snapshot construction meaningful.
    """

    consensus_number = 1
    READONLY = frozenset({"read"})
    #: Static configuration (fixed at construction), not shared state:
    #: audit_state exposes only the cells, and the footprint analyzer
    #: treats reads of these as footprint-free.
    AUDIT_EXCLUDE = SharedObject.AUDIT_EXCLUDE | frozenset(
        {"size", "single_writer"})

    def __init__(self, name: str, size: int, initial: Any = BOTTOM,
                 single_writer: bool = False) -> None:
        super().__init__(name, None)
        if size < 1:
            raise ValueError("size must be >= 1")
        self.size = size
        self.cells = [initial] * size
        #: If True, cell j may only be written by process j.
        self.single_writer = single_writer

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise IndexError(
                f"{self.name}[{index}] out of range 0..{self.size - 1}")

    def op_read(self, pid: int, index: int) -> Any:
        self._check_index(index)
        return self.cells[index]

    def op_write(self, pid: int, index: int, value: Any) -> None:
        self._check_index(index)
        if self.single_writer and pid != index:
            raise PortViolation(
                f"p{pid} wrote single-writer cell {self.name}[{index}]")
        self.cells[index] = value

    def footprint(self, pid: int, method: str,
                  args: Tuple[Any, ...]) -> Footprint:
        # Per-cell footprints: accesses to distinct cells are independent.
        if method == "read" and args:
            return Footprint.read(self.name, args[0])
        if method == "write" and args:
            return Footprint.write(self.name, args[0])
        return super().footprint(pid, method, args)

    def audit_state(self):
        return dict(enumerate(self.cells))

    def audit_set(self, key, value) -> bool:
        if not (isinstance(key, int) and 0 <= key < self.size):
            return False
        self.cells[key] = value
        return True
