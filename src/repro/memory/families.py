"""Dynamically-indexed families of shared objects.

The BG-style simulations use unbounded arrays of agreement objects --
``SAFE_AG[1..n, 0..+∞)`` in Figure 3, one ``XSAFE_AG[a]`` per simulated
consensus object in Figure 4, and per-instance ``TS[1..x]`` / ``XCONS[1..m]``
/ ``X_SAFE_AG`` in Figures 5-6.  A *family* object hosts such an array under
a single store name: every operation takes a hashable ``key`` naming the
instance, and instances are created lazily on first touch.

A family of consensus-number-c objects is itself "an object of consensus
number c" for the purpose of the model validator: it is nothing more than a
naming convention over as many independent objects as the run needs, which
the ASM model explicitly allows ("the processes can access as many
consensus objects ... as they want", Section 2.3).
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Hashable, List, Optional, Sequence, Tuple

from ..runtime.ops import WHOLE, Footprint
from .base import (BOTTOM, MISSING_STATE, PortViolation, ProtocolViolation,
                   SharedObject)


class SnapshotFamily(SharedObject):
    """A lazy family of single-writer snapshot objects of fixed ``size``.

    Entry ``index`` of every instance is writable only by process
    ``owner_of(index)`` (identity by default).
    """

    consensus_number = 1
    READONLY = frozenset({"snapshot", "read"})
    #: Static configuration, not shared state (audit_state exposes the
    #: per-instance cells only); the footprint analyzer ignores these.
    AUDIT_EXCLUDE = SharedObject.AUDIT_EXCLUDE | frozenset(
        {"size", "enforce_owner"})

    def __init__(self, name: str, size: int,
                 enforce_owner: bool = True) -> None:
        super().__init__(name, None)
        if size < 1:
            raise ValueError("size must be >= 1")
        self.size = size
        self.enforce_owner = enforce_owner
        self._instances: Dict[Hashable, List[Any]] = {}

    def _cells(self, key: Hashable) -> List[Any]:
        cells = self._instances.get(key)
        if cells is None:
            cells = [BOTTOM] * self.size
            self._instances[key] = cells
        return cells

    def op_write(self, pid: int, key: Hashable, index: int,
                 value: Any) -> None:
        if not 0 <= index < self.size:
            raise IndexError(f"{self.name}[{key}][{index}] out of range")
        if self.enforce_owner and pid != index:
            raise PortViolation(
                f"p{pid} wrote {self.name}[{key}][{index}] "
                f"(single-writer entry of p{index})")
        self._cells(key)[index] = value

    def op_snapshot(self, pid: int, key: Hashable) -> Tuple[Any, ...]:
        return tuple(self._cells(key))

    def op_read(self, pid: int, key: Hashable, index: int) -> Any:
        return self._cells(key)[index]

    def footprint(self, pid: int, method: str,
                  args: Tuple[Any, ...]) -> Footprint:
        # Instances (keys) are fully independent of each other; within an
        # instance, writes touch one entry and snapshots read all of them.
        if method == "write" and len(args) >= 2:
            return Footprint.write(self.name, (args[0], args[1]))
        if method == "read" and len(args) >= 2:
            return Footprint.read(self.name, (args[0], args[1]))
        if method == "snapshot" and args:
            return Footprint.read(self.name, (args[0], WHOLE))
        return super().footprint(pid, method, args)

    def audit_state(self):
        return {(key, index): value
                for key, cells in self._instances.items()
                for index, value in enumerate(cells)}

    def audit_set(self, key, value) -> bool:
        if not (isinstance(key, tuple) and len(key) == 2
                and isinstance(key[1], int) and 0 <= key[1] < self.size):
            return False
        self._cells(key[0])[key[1]] = value
        return True

    def audit_default(self, key):
        # An absent instance is semantically all-⊥: lazily materializing
        # it (e.g. a snapshot of a never-written instance) is no write.
        return BOTTOM

    @property
    def instance_count(self) -> int:
        return len(self._instances)


class RegisterFamily(SharedObject):
    """A lazy family of multi-writer/multi-reader atomic registers."""

    consensus_number = 1
    READONLY = frozenset({"read"})

    def __init__(self, name: str) -> None:
        super().__init__(name, None)
        self._values: Dict[Hashable, Any] = {}

    def op_write(self, pid: int, key: Hashable, value: Any) -> None:
        self._values[key] = value

    def op_read(self, pid: int, key: Hashable) -> Any:
        return self._values.get(key, BOTTOM)

    def footprint(self, pid: int, method: str,
                  args: Tuple[Any, ...]) -> Footprint:
        if method == "write" and args:
            return Footprint.write(self.name, (args[0],))
        if method == "read" and args:
            return Footprint.read(self.name, (args[0],))
        return super().footprint(pid, method, args)

    def audit_state(self):
        return {(key,): value for key, value in self._values.items()}

    def audit_set(self, key, value) -> bool:
        if not (isinstance(key, tuple) and len(key) == 1):
            return False
        self._values[key[0]] = value
        return True

    def audit_default(self, key):
        return BOTTOM

    @property
    def instance_count(self) -> int:
        return len(self._values)


class TASFamily(SharedObject):
    """A lazy family of one-shot test&set objects (consensus number 2)."""

    consensus_number = 2
    READONLY = frozenset({"peek"})

    def __init__(self, name: str) -> None:
        super().__init__(name, None)
        self._winners: Dict[Hashable, int] = {}
        self._callers: Dict[Hashable, set] = {}

    def op_test_and_set(self, pid: int, key: Hashable) -> bool:
        callers = self._callers.setdefault(key, set())
        if pid in callers:
            raise ProtocolViolation(
                f"p{pid} invoked one-shot {self.name}[{key}] twice")
        callers.add(pid)
        if key not in self._winners:
            self._winners[key] = pid
            return True
        return False

    def op_peek(self, pid: int, key: Hashable) -> Optional[int]:
        return self._winners.get(key)

    def footprint(self, pid: int, method: str,
                  args: Tuple[Any, ...]) -> Footprint:
        # test&set both observes and settles the instance: read+write.
        if method == "test_and_set" and args:
            return Footprint.readwrite(self.name, (args[0],))
        if method == "peek" and args:
            return Footprint.read(self.name, (args[0],))
        return super().footprint(pid, method, args)

    def audit_state(self):
        return {(key,): (self._winners.get(key),
                         frozenset(self._callers.get(key, ())))
                for key in set(self._winners) | set(self._callers)}

    def audit_set(self, key, value) -> bool:
        if not (isinstance(key, tuple) and len(key) == 1):
            return False
        self._winners[key[0]] = value
        self._callers[key[0]] = value
        return True

    def audit_default(self, key):
        return (None, frozenset())

    @property
    def instance_count(self) -> int:
        return len(self._callers)


class XConsFamily(SharedObject):
    """A lazy family of x-consensus objects indexed by (key, subset index).

    ``subsets`` is the shared ``SET_LIST[1..m]`` of Figure 6: the list of
    size-x subsets of simulator ids, in a fixed order every simulator scans
    identically.  Instance ``(key, ell)`` is the consensus object
    ``XCONS[ell]`` of the x-safe-agreement instance ``key``; its static port
    set is ``subsets[ell]``.
    """

    READONLY = frozenset({"peek"})
    #: SET_LIST is the statically-agreed subset table (fixed at
    #: construction, identical for every process), not shared mutable
    #: state; the footprint analyzer ignores reads of it.
    AUDIT_EXCLUDE = SharedObject.AUDIT_EXCLUDE | frozenset(
        {"subsets", "consensus_number"})

    def __init__(self, name: str, subsets: Sequence[Sequence[int]]) -> None:
        super().__init__(name, None)
        if not subsets:
            raise ValueError("subsets must be non-empty")
        self.subsets: List[FrozenSet[int]] = [frozenset(s) for s in subsets]
        sizes = {len(s) for s in self.subsets}
        self.consensus_number = max(sizes)
        self._decided: Dict[Hashable, Any] = {}
        self._proposers: Dict[Hashable, set] = {}

    @property
    def m(self) -> int:
        """Number of subsets (the paper's m = C(n, x))."""
        return len(self.subsets)

    def op_propose(self, pid: int, key: Hashable, ell: int,
                   value: Any) -> Any:
        if not 0 <= ell < len(self.subsets):
            raise IndexError(f"{self.name} subset index {ell} out of range")
        if pid not in self.subsets[ell]:
            raise PortViolation(
                f"p{pid} proposed to {self.name}[{key}][{ell}], ports "
                f"{sorted(self.subsets[ell])}")
        instance = (key, ell)
        proposers = self._proposers.setdefault(instance, set())
        if pid in proposers:
            raise ProtocolViolation(
                f"p{pid} proposed twice to {self.name}[{key}][{ell}]")
        proposers.add(pid)
        if instance not in self._decided:
            self._decided[instance] = value
        return self._decided[instance]

    def op_peek(self, pid: int, key: Hashable, ell: int) -> Any:
        return self._decided.get((key, ell), BOTTOM)

    def footprint(self, pid: int, method: str,
                  args: Tuple[Any, ...]) -> Footprint:
        # One consensus instance per (key, subset) pair; a propose both
        # reads the decided value and may settle it.
        if method == "propose" and len(args) >= 2:
            return Footprint.readwrite(self.name, (args[0], args[1]))
        if method == "peek" and len(args) >= 2:
            return Footprint.read(self.name, (args[0], args[1]))
        return super().footprint(pid, method, args)

    def audit_state(self):
        return {inst: (self._decided.get(inst, BOTTOM),
                       frozenset(self._proposers.get(inst, ())))
                for inst in set(self._decided) | set(self._proposers)}

    def audit_set(self, key, value) -> bool:
        if not (isinstance(key, tuple) and len(key) == 2):
            return False
        self._decided[key] = value
        self._proposers[key] = value
        return True

    def audit_default(self, key):
        return (BOTTOM, frozenset())

    @property
    def instance_count(self) -> int:
        return len(self._proposers)
