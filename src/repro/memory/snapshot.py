"""Base-atomic single-writer snapshot objects.

The paper's shared memory is "a snapshot object mem[1..n], one entry per
process; pj alone writes mem[j] via mem[j].write(v); any process reads the
whole array atomically via mem.snapshot()" (Section 2.3).  Snapshot objects
are wait-free implementable from atomic registers (Afek et al. 1993) and
hence have consensus number 1; this module provides them as an atomic
primitive (one scheduler step per operation) while
`repro.memory.afek_snapshot` provides the derived construction, witnessing
the implementability claim.
"""

from __future__ import annotations

from typing import Any, Tuple

from ..runtime.ops import WHOLE, Footprint
from .base import BOTTOM, PortViolation, SharedObject


class SnapshotObject(SharedObject):
    """A single-writer atomic snapshot object with ``size`` entries.

    Entries are indexed 0..size-1 (the paper uses 1..n; this library is
    0-based throughout).  By default entry ``j`` may only be written by
    process ``j``; set ``owner_map`` to remap entries to owners (the BG
    simulators' MEM object maps simulator ids to entries), or
    ``enforce_owner=False`` for a multi-writer snapshot.
    """

    consensus_number = 1
    READONLY = frozenset({"snapshot", "read"})
    #: size/enforce_owner/owner_map are static configuration and the
    #: two counters are instrumentation; audit_state exposes only the
    #: entries, and the footprint analyzer ignores accesses to these.
    AUDIT_EXCLUDE = SharedObject.AUDIT_EXCLUDE | frozenset(
        {"size", "enforce_owner", "owner_map", "write_counts",
         "snapshot_count"})

    def __init__(self, name: str, size: int, initial: Any = BOTTOM,
                 enforce_owner: bool = True,
                 owner_map=None) -> None:
        super().__init__(name, None)
        if size < 1:
            raise ValueError("size must be >= 1")
        self.size = size
        self.entries = [initial] * size
        self.enforce_owner = enforce_owner
        #: entry index -> owning pid; identity when None.
        self.owner_map = dict(owner_map) if owner_map is not None else None
        self.write_counts = [0] * size
        self.snapshot_count = 0

    def _owner(self, index: int) -> int:
        if self.owner_map is not None:
            return self.owner_map[index]
        return index

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise IndexError(
                f"{self.name}[{index}] out of range 0..{self.size - 1}")

    def op_write(self, pid: int, index: int, value: Any) -> None:
        self._check_index(index)
        if self.enforce_owner and pid != self._owner(index):
            raise PortViolation(
                f"p{pid} wrote {self.name}[{index}], owned by "
                f"p{self._owner(index)}")
        self.entries[index] = value
        self.write_counts[index] += 1

    # The written entry is pid under an identity owner map but is
    # data-dependent (reverse owner_map lookup) otherwise, which the
    # static analyzer cannot pin to a key; the declaration computes the
    # *same* data-dependent entry, and the dynamic auditor pins the
    # equivalence on every executed schedule.
    def op_update(self, pid: int, value: Any) -> None:  # lint: ignore[F501]
        """Write the caller's own entry (requires identity owner map)."""
        self.op_write(pid, pid if self.owner_map is None else
                      self._entry_of(pid), value)

    def _entry_of(self, pid: int) -> int:
        if self.owner_map is None:
            return pid
        for index, owner in self.owner_map.items():
            if owner == pid:
                return index
        raise PortViolation(
            f"p{pid} owns no entry of snapshot object {self.name!r}")

    def op_snapshot(self, pid: int) -> Tuple[Any, ...]:
        self.snapshot_count += 1
        return tuple(self.entries)

    def op_read(self, pid: int, index: int) -> Any:
        self._check_index(index)
        return self.entries[index]

    def footprint(self, pid: int, method: str,
                  args: Tuple[Any, ...]) -> Footprint:
        # Writes touch one entry; snapshots read every entry.  Writes to
        # distinct entries are therefore independent, while any write is
        # dependent with any snapshot.
        if method == "write" and args:
            return Footprint.write(self.name, args[0])
        if method == "update":
            entry = (pid if self.owner_map is None else self._entry_of(pid))
            return Footprint.write(self.name, entry)
        if method == "read" and args:
            return Footprint.read(self.name, args[0])
        if method == "snapshot":
            return Footprint.read(self.name, WHOLE)
        return super().footprint(pid, method, args)

    def audit_state(self):
        # One location per entry; the write/snapshot counters are
        # instrumentation, not shared protocol state.
        return dict(enumerate(self.entries))

    def audit_set(self, key, value) -> bool:
        if not (isinstance(key, int) and 0 <= key < self.size):
            return False
        self.entries[key] = value
        return True
