"""Wait-free atomic snapshot from single-writer registers (Afek et al. 93).

The paper's model takes snapshot objects as primitive because "such a
snapshot object can be wait-free implemented on top of atomic read/write
registers [1, 4]" (Section 2.3).  This module witnesses that claim: a
snapshot object with ``update``/``snapshot`` operations built from nothing
but single-writer atomic registers, each register access one atomic step.

Classic double-collect-with-helping construction:

* ``update(v)``: take an (embedded) snapshot, then write
  (value, seq+1, embedded_view) to your register;
* ``snapshot()``: repeatedly collect all registers;
  - two identical consecutive collects -> return the values directly
    (a clean double collect linearizes between the two);
  - a writer observed to move *twice* performed a complete update inside
    our interval -> borrow its embedded view.

Wait-freedom: each failed iteration moves some writer's counter; after a
writer moves twice we borrow, so at most 2n + 1 collects happen.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Tuple

from ..runtime.ops import ObjectProxy
from .base import BOTTOM
from .specs import ObjectSpec, make_spec


class AfekSnapshot:
    """View of a derived snapshot object over a single-writer register
    array named ``name`` (one register per process)."""

    def __init__(self, name: str, size: int) -> None:
        self.size = size
        self.regs = ObjectProxy(name)
        self._seq = 0  # local write sequence counter (this process only)

    # ------------------------------------------------------------------
    def object_specs(self) -> List[ObjectSpec]:
        return [make_spec("register_array", self.regs.name, size=self.size,
                          single_writer=True)]

    # ------------------------------------------------------------------
    def _collect(self) -> Generator:
        """Read all registers, one atomic step each."""
        cells = []
        for w in range(self.size):
            cell = yield self.regs.read(w)
            cells.append(cell)
        return tuple(cells)

    @staticmethod
    def _values(cells: Tuple[Any, ...]) -> Tuple[Any, ...]:
        return tuple(BOTTOM if c is BOTTOM else c[0] for c in cells)

    @staticmethod
    def _seq_of(cell: Any) -> int:
        return 0 if cell is BOTTOM else cell[1]

    def snapshot(self, pid: int) -> Generator:
        """Wait-free atomic snapshot of all entries."""
        moved = [0] * self.size
        prev = yield from self._collect()
        while True:
            cur = yield from self._collect()
            if cur == prev:
                return self._values(cur)
            for w in range(self.size):
                if self._seq_of(cur[w]) != self._seq_of(prev[w]):
                    moved[w] += 1
                    if moved[w] >= 2:
                        # w completed an update entirely inside our
                        # interval; its embedded view is linearizable here.
                        return cur[w][2]
            prev = cur

    def update(self, pid: int, value: Any) -> Generator:
        """Write this process's entry (with an embedded view)."""
        view = yield from self.snapshot(pid)
        self._seq += 1
        yield self.regs.write(pid, (value, self._seq, view))
