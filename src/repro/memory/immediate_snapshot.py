"""One-shot immediate snapshot (Borowsky-Gafni 1993).

The immediate-snapshot object is the backbone of the literature around
the BG simulation (the iterated model, the topological characterizations
of Herlihy-Shavit and Saks-Zaharoglou that the paper's impossibility
citations rest on).  Each process writes a value and obtains a *view* --
a set of (pid, value) pairs -- such that:

* **self-inclusion**: (i, v_i) ∈ view_i;
* **containment**:   views are totally ordered by ⊆;
* **immediacy**:     (j, v_j) ∈ view_i  ⟹  view_j ⊆ view_i.

(Immediacy is what plain snapshots lack: it makes write+scan look
simultaneous.)

Implemented with the classic recursive *levels* algorithm, wait-free
over one snapshot object: a process descends from level n, announcing
(value, level) and scanning; it returns at level ℓ once it sees at
least ℓ processes at levels ≤ ℓ, with its view = those processes.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Tuple

from ..runtime.ops import ObjectProxy
from .base import BOTTOM
from .specs import ObjectSpec, make_spec


class ImmediateSnapshot:
    """View of a one-shot immediate-snapshot object for ``size``
    processes, backed by a snapshot object named ``name`` whose entries
    hold (value, level) pairs."""

    def __init__(self, name: str, size: int) -> None:
        if size < 1:
            raise ValueError("size must be >= 1")
        self.size = size
        self.mem = ObjectProxy(name)
        self.name = name

    def object_specs(self) -> List[ObjectSpec]:
        return [make_spec("snapshot", self.name, size=self.size)]

    def write_snapshot(self, pid: int, value: Any) -> Generator:
        """``view = yield from is_obj.write_snapshot(pid, v)``.

        Returns the view as a dict {pid: value}.
        """
        level = self.size + 1
        while True:
            level -= 1
            yield self.mem.write(pid, (value, level))
            snap = yield self.mem.snapshot()
            at_or_below = {
                j: entry[0]
                for j, entry in enumerate(snap)
                if entry is not BOTTOM and entry[1] <= level
            }
            if len(at_or_below) >= level:
                return at_or_below
            if level <= 1:
                raise AssertionError(
                    "immediate snapshot descended below level 1 -- "
                    "impossible with <= size participants")


def check_immediate_snapshot_views(views: Dict[int, Dict[int, Any]],
                                   inputs: Dict[int, Any]) -> List[str]:
    """Validate the three immediate-snapshot properties; returns a list
    of violation descriptions (empty = correct)."""
    violations: List[str] = []
    for pid, view in views.items():
        if pid not in view or view[pid] != inputs[pid]:
            violations.append(f"self-inclusion: p{pid} missing from "
                              f"its own view {view}")
        for j, vj in view.items():
            if inputs.get(j) != vj:
                violations.append(
                    f"validity: p{pid} saw {vj!r} for p{j}, "
                    f"input was {inputs.get(j)!r}")
    ordered = sorted(views.items(), key=lambda kv: len(kv[1]))
    for (pa, va), (pb, vb) in zip(ordered, ordered[1:]):
        if not set(va) <= set(vb):
            violations.append(
                f"containment: views of p{pa} and p{pb} incomparable")
    for pid, view in views.items():
        for j in view:
            if j in views and not set(views[j]) <= set(view):
                violations.append(
                    f"immediacy: p{pid} sees p{j} but view_{j} is not "
                    f"contained in view_{pid}")
    return violations
