"""The object store of a run.

Holds every shared object a run can access and dispatches the scheduler's
atomic operations to them.  One store per run: objects are stateful, so
build a fresh store for every execution (algorithms expose ``build_store``
factories for exactly this reason).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional

from ..runtime.ops import Invocation
from .base import SharedObject


class UnknownObject(KeyError):
    """An invocation referenced an object name absent from the store."""


class ObjectStore:
    """Name -> shared object mapping with atomic dispatch."""

    def __init__(self) -> None:
        self._objects: Dict[str, SharedObject] = {}
        self.op_count = 0

    def add(self, obj: SharedObject) -> SharedObject:
        if obj.name in self._objects:
            raise ValueError(f"duplicate object name {obj.name!r}")
        self._objects[obj.name] = obj
        return obj

    def add_all(self, objs) -> None:
        for obj in objs:
            self.add(obj)

    def __getitem__(self, name: str) -> SharedObject:
        try:
            return self._objects[name]
        except KeyError:
            raise UnknownObject(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._objects

    def __iter__(self) -> Iterator[SharedObject]:
        return iter(self._objects.values())

    def __len__(self) -> int:
        return len(self._objects)

    def get(self, name: str) -> Optional[SharedObject]:
        return self._objects.get(name)

    def shared_objects(self) -> Dict[str, SharedObject]:
        """Name -> object view for state fingerprinting.

        The DPOR state cache (:mod:`repro.runtime.fingerprint`)
        canonicalises every object here, sorted by name, so the
        fingerprint is independent of registration order.  ``op_count``
        is observability instrumentation and deliberately *not* part of
        the fingerprint; check callbacks must not depend on it.
        """
        return self._objects

    # ------------------------------------------------------------------
    def apply(self, pid: int, inv: Invocation) -> Any:
        obj = self[inv.obj]
        self.op_count += 1
        return obj.apply(pid, inv.method, inv.args)

    def is_readonly(self, inv: Invocation) -> bool:
        return self[inv.obj].is_readonly(inv.method)

    def footprint(self, pid: int, inv: Invocation):
        """Read/write footprint of ``inv`` when invoked by ``pid``.

        Delegates to the target object (see
        :meth:`~repro.memory.base.SharedObject.footprint`); the DPOR
        explorer uses the result as its independence relation.
        """
        return self[inv.obj].footprint(pid, inv.method, inv.args)
