"""The ASM(n, t, x) system model (paper Section 2.3).

``ASM(n, t, x)`` is a shared-memory system of n asynchronous processes, up
to t of which may crash, communicating through read/write snapshot memory
and objects of consensus number x, each accessible by at most x statically
defined processes.

This module provides the model descriptor plus conformance checking: which
shared objects a model permits, and whether a crash plan respects t.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from .memory.base import SharedObject


class ModelViolation(ValueError):
    """A run or store does not conform to its declared ASM model."""


@dataclass(frozen=True, order=False)
class ASM:
    """Descriptor of a system model ASM(n, t, x).

    ``t`` may be 0 (failure-free; used by the paper's Section 5.4 examples,
    e.g. "ASM(n, 8, x) for 9 <= x <= n has the same power as ASM(n, 0, 1)").
    ``x`` is a positive int, or ``math.inf`` for universal objects (CAS).
    """

    n: int
    t: int
    x: float = 1

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ModelViolation(f"n must be >= 1, got {self.n}")
        if not 0 <= self.t < self.n:
            raise ModelViolation(
                f"need 0 <= t < n, got t={self.t}, n={self.n}")
        if self.x != math.inf:
            if not isinstance(self.x, int) or self.x < 1:
                raise ModelViolation(
                    f"x must be a positive int or inf, got {self.x}")
            if self.x > self.n:
                raise ModelViolation(
                    f"x cannot exceed n (x={self.x}, n={self.n}): an object "
                    f"port set cannot be larger than the process set")

    # ------------------------------------------------------------------
    @property
    def wait_free(self) -> bool:
        """t = n-1: algorithms in this model are wait-free."""
        return self.t == self.n - 1

    @property
    def resilience_index(self) -> int:
        """⌊t/x⌋ -- the quantity that fully determines the model's power
        for colorless decision tasks (the paper's main theorem)."""
        if self.x == math.inf:
            return 0
        return self.t // self.x

    def canonical(self) -> "ASM":
        """The canonical representative ASM(n, ⌊t/x⌋, 1) of this model's
        equivalence class (paper, Section 5.4)."""
        return ASM(self.n, self.resilience_index, 1)

    def bg_reduced(self) -> "ASM":
        """ASM(t+1, t, x): the wait-free model the generalized BG
        simulation (paper Section 5.2 / contribution #2) reduces to."""
        if self.t < 1:
            raise ModelViolation(
                "BG reduction needs t >= 1 (a 1-process model is trivial)")
        x = self.x if self.x == math.inf else min(self.x, self.t + 1)
        return ASM(self.t + 1, self.t, x)

    # ------------------------------------------------------------------
    def permits_object(self, obj: SharedObject) -> bool:
        """Does this model allow ``obj`` in the shared store?

        Rule: the object's consensus number must not exceed x.  Registers
        and snapshot objects (cn 1) are always allowed; consensus objects
        carry cn = |ports| <= x; test&set (cn 2) needs x >= 2 and is then
        implementable from the model's objects for any number of ports
        (paper Section 4.3, citing [19]).
        """
        return obj.consensus_number <= self.x

    def validate_store(self, store: Iterable[SharedObject]) -> None:
        offenders = [obj for obj in store if not self.permits_object(obj)]
        if offenders:
            raise ModelViolation(
                f"{self} does not permit: " +
                ", ".join(f"{o.name} (cn={o.consensus_number})"
                          for o in offenders))

    def validate_crashes(self, n_crashes: int) -> None:
        if n_crashes > self.t:
            raise ModelViolation(
                f"{self} allows at most t={self.t} crashes, plan has "
                f"{n_crashes}")

    # ------------------------------------------------------------------
    def __str__(self) -> str:
        x = "∞" if self.x == math.inf else self.x
        return f"ASM({self.n}, {self.t}, {x})"
