"""Static and dynamic analysis for the protocol/footprint discipline.

Two prongs, surfaced as ``python -m repro lint`` / ``python -m repro
audit`` and documented in ``docs/static_analysis.md``:

* `repro.lint.rules` + `repro.lint.linter` -- an AST linter over
  protocol process code with a pluggable rule registry (discipline
  bypasses, nondeterminism sources, non-descriptor yields, static
  x-port violations);
* `repro.lint.audit` -- a dynamic footprint-soundness auditor that
  validates every executed operation against the read/write footprint
  it declares to the DPOR explorer.
"""

from .audit import (DEFAULT_AUDIT_SEEDS, AuditingStore, AuditReport,
                    FootprintViolation, audit_scenario)
from .linter import (LintError, discover_files, lint_paths, lint_source,
                     select_rules)
from .rules import RULES, LintViolation, ModuleInfo, Rule, all_rules, rule

__all__ = [
    "DEFAULT_AUDIT_SEEDS", "AuditingStore", "AuditReport",
    "FootprintViolation", "audit_scenario",
    "LintError", "discover_files", "lint_paths", "lint_source",
    "select_rules",
    "RULES", "LintViolation", "ModuleInfo", "Rule", "all_rules", "rule",
]
