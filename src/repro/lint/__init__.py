"""Static and dynamic analysis for the protocol/footprint discipline.

Two prongs, surfaced as ``python -m repro lint`` / ``python -m repro
audit`` and documented in ``docs/static_analysis.md``:

* `repro.lint.rules` + `repro.lint.linter` -- an AST linter over
  protocol process code with a pluggable rule registry (discipline
  bypasses, nondeterminism sources, non-descriptor yields, static
  x-port violations);
* `repro.lint.footprints` (+ `repro.lint.cfg`, `repro.lint.infer`) --
  the static footprint-soundness pass: yield-point CFGs per protocol
  generator and abstract interpretation of every ``op_*`` handler,
  cross-checked against the declared ``footprint()`` (rules F501-F503);
* `repro.lint.audit` -- a dynamic footprint-soundness auditor that
  validates every executed operation against the read/write footprint
  it declares to the DPOR explorer.
"""

from .audit import (DEFAULT_AUDIT_SEEDS, AuditingStore, AuditReport,
                    FootprintViolation, audit_scenario)
from .linter import (LintError, baseline_key, discover_files, filter_baseline,
                     lint_paths, lint_source, load_baseline, select_rules,
                     violations_payload, write_baseline)
from .rules import RULES, LintViolation, ModuleInfo, Rule, all_rules, rule
from . import footprints  # noqa: F401  (registers F501-F503 in RULES)

__all__ = [
    "DEFAULT_AUDIT_SEEDS", "AuditingStore", "AuditReport",
    "FootprintViolation", "audit_scenario",
    "LintError", "baseline_key", "discover_files", "filter_baseline",
    "lint_paths", "lint_source", "load_baseline", "select_rules",
    "violations_payload", "write_baseline",
    "RULES", "LintViolation", "ModuleInfo", "Rule", "all_rules", "rule",
]
