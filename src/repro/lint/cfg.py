"""Control-flow graphs over the yield points of protocol generators.

Process code in this library is a Python generator: every shared-memory
access is one ``yield`` of an operation descriptor, and the scheduler
interleaves processes *only* at those yields.  The atomic-step structure
of a protocol is therefore fully described by the control flow between
its yield points -- which yields can execute at all, and which yield can
follow which.  This module builds that graph statically:

* nodes are the generator's ``yield`` / ``yield from`` expressions plus
  the synthetic :data:`ENTRY` and :data:`EXIT`;
* edges follow the statement-level control flow (sequencing, branches,
  loops, ``return`` / ``raise`` / ``break`` / ``continue``), with
  internal junction nodes for loop heads;
* nested ``def`` / ``lambda`` bodies are excluded -- each nested
  function is its own process-code scope, exactly as the lint rules
  treat them.

Reachability is deliberately **over-approximated** (every branch is
considered takeable, exception edges are coarse): a yield reported
unreachable really cannot execute, while spurious "reachable" verdicts
only make the downstream rules (`repro.lint.footprints`) quieter, never
wrong.  The one recognised exception is the *dead-yield generator
marker* -- ``return value`` directly followed by a bare ``yield``, the
idiom for "this function is a generator that decides immediately" --
which :func:`marker_yields` identifies so rules can exempt it.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

#: Synthetic entry node of every CFG.
ENTRY = "<entry>"
#: Synthetic exit node (normal return, raise, or falling off the end).
EXIT = "<exit>"

#: A CFG node: a yield expression, a junction, or ENTRY/EXIT.
Node = Union[str, ast.expr, "Junction"]


class Junction:
    """An internal merge/loop-head node (carries no operation)."""

    __slots__ = ("label",)

    def __init__(self, label: str) -> None:
        self.label = label

    def __repr__(self) -> str:
        return f"<junction:{self.label}>"


def _own_scope_walk(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` without descending into nested function scopes."""
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            stack.append(child)


def _stmt_yields(stmt: ast.stmt,
                 skip: Tuple[type, ...] = ()) -> List[ast.expr]:
    """Yield/YieldFrom expressions in one statement's own expressions.

    ``skip`` names child-statement attributes to ignore (a compound
    statement's nested bodies are walked by the builder itself).
    """
    found: List[ast.expr] = []
    stack: List[ast.AST] = []
    for name, value in ast.iter_fields(stmt):
        if name in skip:
            continue
        if isinstance(value, ast.AST):
            stack.append(value)
        elif isinstance(value, list):
            stack.extend(v for v in value if isinstance(v, ast.AST))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.stmt)):
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            found.append(node)
        stack.extend(ast.iter_child_nodes(node))
    found.sort(key=lambda n: (n.lineno, n.col_offset))
    return found


def marker_yields(func: ast.AST) -> Set[ast.expr]:
    """Bare yields directly after a ``return`` (the generator marker).

    ``return value`` followed by a dead ``yield`` is the sanctioned
    idiom for a generator that decides without taking a step; the yield
    is unreachable *by design* and rules must not flag it.
    """
    markers: Set[ast.expr] = set()
    for node in _own_scope_walk(func):
        for stmts in (getattr(node, "body", None),
                      getattr(node, "orelse", None),
                      getattr(node, "finalbody", None)):
            if not isinstance(stmts, list):
                continue
            for prev, cur in zip(stmts, stmts[1:]):
                if (isinstance(prev, ast.Return)
                        and isinstance(cur, ast.Expr)
                        and isinstance(cur.value, ast.Yield)
                        and cur.value.value is None):
                    markers.add(cur.value)
    return markers


class GeneratorCFG:
    """The yield-point control-flow graph of one generator function."""

    def __init__(self, func: ast.AST) -> None:
        self.func = func
        #: Every yield expression in the function's own scope, in
        #: source order (reachable or not).
        self.yields: List[ast.expr] = []
        self._succ: Dict[int, Set[Node]] = {}
        self._nodes: Dict[int, Node] = {}
        self._reachable: Optional[Set[int]] = None

    # -- construction helpers (used by the builder only) ---------------
    def _add_edge(self, src: Node, dst: Node) -> None:
        self._nodes.setdefault(id(src), src)
        self._nodes.setdefault(id(dst), dst)
        self._succ.setdefault(id(src), set()).add(dst)

    def _connect(self, frontier: Set[Node], dst: Node) -> None:
        for src in frontier:
            self._add_edge(src, dst)

    # -- queries -------------------------------------------------------
    def successors(self, node: Node) -> Set[Node]:
        return set(self._succ.get(id(node), ()))

    def reachable_nodes(self) -> Set[int]:
        """ids of nodes reachable from ENTRY (cached)."""
        if self._reachable is None:
            seen: Set[int] = set()
            stack: List[Node] = [ENTRY]
            while stack:
                node = stack.pop()
                if id(node) in seen:
                    continue
                seen.add(id(node))
                stack.extend(self._succ.get(id(node), ()))
            self._reachable = seen
        return self._reachable

    def is_reachable(self, node: Node) -> bool:
        if node is ENTRY:
            return True
        return id(node) in self.reachable_nodes()

    def unreachable_yields(self) -> List[ast.expr]:
        """Yields no execution can reach, markers included."""
        reachable = self.reachable_nodes()
        return [y for y in self.yields if id(y) not in reachable]

    def yield_successors(self, node: Node) -> Set[Node]:
        """The yields (or EXIT) that can execute next after ``node``.

        Junctions are traversed transparently: the result contains only
        yield expressions and :data:`EXIT` -- the view of the protocol
        the scheduler actually sees, one atomic step to the next.
        """
        result: Set[Node] = set()
        seen: Set[int] = set()
        stack: List[Node] = list(self.successors(node))
        while stack:
            current = stack.pop()
            if id(current) in seen:
                continue
            seen.add(id(current))
            if current is EXIT or isinstance(current,
                                             (ast.Yield, ast.YieldFrom)):
                result.add(current)
                continue
            stack.extend(self.successors(current))
        return result


class _Builder:
    """Continuation-style CFG builder over one function body."""

    def __init__(self, cfg: GeneratorCFG) -> None:
        self.cfg = cfg
        #: (continue_target, break_frontier) per enclosing loop.
        self.loops: List[Tuple[Node, Set[Node]]] = []

    # ------------------------------------------------------------------
    def chain(self, yields: List[ast.expr],
              frontier: Set[Node]) -> Set[Node]:
        """Wire a statement's yields in evaluation order."""
        for y in yields:
            self.cfg.yields.append(y)
            self.cfg._connect(frontier, y)
            frontier = {y}
        return frontier

    def build_body(self, body: List[ast.stmt],
                   frontier: Set[Node]) -> Set[Node]:
        for stmt in body:
            frontier = self.build_stmt(stmt, frontier)
        return frontier

    # ------------------------------------------------------------------
    def build_stmt(self, stmt: ast.stmt,
                   frontier: Set[Node]) -> Set[Node]:
        cfg = self.cfg
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return frontier
        if isinstance(stmt, ast.If):
            frontier = self.chain(_stmt_yields(
                stmt, skip=("body", "orelse")), frontier)
            after = self.build_body(stmt.body, set(frontier))
            after |= self.build_body(stmt.orelse, set(frontier))
            return after
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._build_loop(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            frontier = self.chain(_stmt_yields(stmt, skip=("body",)),
                                  frontier)
            return self.build_body(stmt.body, frontier)
        # Simple statements: wire any yields, then terminators.
        frontier = self.chain(_stmt_yields(stmt), frontier)
        if isinstance(stmt, ast.Return):
            cfg._connect(frontier, EXIT)
            return set()
        if isinstance(stmt, ast.Raise):
            cfg._connect(frontier, EXIT)
            return set()
        if isinstance(stmt, ast.Break):
            if self.loops:
                self.loops[-1][1].update(frontier)
            return set()
        if isinstance(stmt, ast.Continue):
            if self.loops:
                cfg._connect(frontier, self.loops[-1][0])
            return set()
        return frontier

    # ------------------------------------------------------------------
    def _build_loop(self, stmt: ast.stmt,
                    frontier: Set[Node]) -> Set[Node]:
        cfg = self.cfg
        head = Junction(f"loop@{stmt.lineno}")
        if isinstance(stmt, ast.While):
            cfg._connect(frontier, head)
            test_end = self.chain(_stmt_yields(
                stmt, skip=("body", "orelse")), {head})
            body_entry = test_end
            always_true = (isinstance(stmt.test, ast.Constant)
                           and bool(stmt.test.value))
            exit_frontier = set() if always_true else set(test_end)
        else:  # For/AsyncFor: iterable evaluated once, then the head.
            iter_end = self.chain(_stmt_yields(
                stmt, skip=("body", "orelse")), frontier)
            cfg._connect(iter_end, head)
            body_entry = {head}
            exit_frontier = {head}
        breaks: Set[Node] = set()
        self.loops.append((head, breaks))
        body_end = self.build_body(stmt.body, set(body_entry))
        self.loops.pop()
        cfg._connect(body_end, head)
        exit_frontier |= breaks
        if stmt.orelse:
            exit_frontier = self.build_body(stmt.orelse, exit_frontier)
        return exit_frontier

    def _build_try(self, stmt: ast.Try,
                   frontier: Set[Node]) -> Set[Node]:
        # Coarse exception edges: a handler may be entered from the
        # statement's entry or from anywhere the body reached.  This
        # over-approximates reachability, which is the safe direction.
        body_end = self.build_body(stmt.body, set(frontier))
        after = set(body_end)
        for handler in stmt.handlers:
            after |= self.build_body(handler.body,
                                     set(frontier) | set(body_end))
        if stmt.orelse:
            after |= self.build_body(stmt.orelse, set(body_end))
        if stmt.finalbody:
            after = self.build_body(stmt.finalbody, after)
        return after


def build_cfg(func: ast.AST) -> GeneratorCFG:
    """Build the yield-point CFG of one (generator) function."""
    cfg = GeneratorCFG(func)
    builder = _Builder(cfg)
    frontier = builder.build_body(list(func.body), {ENTRY})
    cfg._connect(frontier, EXIT)
    return cfg
