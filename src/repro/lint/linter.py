"""Lint driver: file discovery, parsing, suppression, reporting.

The driver walks the given paths for ``.py`` files, parses each into a
:class:`~repro.lint.rules.ModuleInfo`, runs every registered rule (or a
selected subset) and filters the findings through suppression comments:

* ``# lint: ignore[CODE]`` (or the rule name) on the offending line
  suppresses that finding;
* ``# lint: skip-file`` anywhere in a file exempts the whole file.

Unparsable or unreadable files are reported as :class:`LintError`
findings, which the CLI maps to exit code 2 (mirroring the ``check``
command's budget/error exit).

Baselines: ``write_baseline`` snapshots the current findings (atomic
write), ``filter_baseline`` subtracts them from a later run so only
*new* violations fail the build.  Baseline entries are keyed on
``(path, code, message)`` occurrence counts, not line numbers, so
unrelated edits that shift lines do not churn the file.
"""

from __future__ import annotations

import ast
import json
import os
import re
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .rules import LintViolation, ModuleInfo, Rule, all_rules

#: Suppression comment grammar: ``# lint: ignore[D101]`` / ``ignore[name]``.
_IGNORE_RE = re.compile(r"#\s*lint:\s*ignore\[([A-Za-z0-9_,\- ]+)\]")
_SKIP_FILE_RE = re.compile(r"#\s*lint:\s*skip-file\b")


@dataclass(frozen=True)
class LintError:
    """A file the linter could not analyze (I/O or syntax error)."""

    path: str
    message: str

    def render(self) -> str:
        return f"{self.path}: error: {self.message}"


def discover_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if d not in {"__pycache__", ".git"})
                found.extend(os.path.join(root, name)
                             for name in sorted(names)
                             if name.endswith(".py"))
        else:
            found.append(path)
    return found


def select_rules(select: Optional[Iterable[str]] = None) -> List[Rule]:
    """Registered rules, optionally filtered by code or name."""
    rules = all_rules()
    if select is None:
        return rules
    wanted = {token.strip() for token in select}
    chosen = [r for r in rules if r.code in wanted or r.name in wanted]
    unknown = wanted - {r.code for r in rules} - {r.name for r in rules}
    if unknown:
        raise ValueError(f"unknown rule(s): {', '.join(sorted(unknown))}")
    return chosen


def lint_source(source: str, path: str = "<string>",
                rules: Optional[List[Rule]] = None
                ) -> List[LintViolation]:
    """Lint one module given as source text (the test-suite entry point)."""
    tree = ast.parse(source, filename=path)
    module = ModuleInfo(path=path, source=source, tree=tree)
    findings: List[LintViolation] = []
    for rule in (rules if rules is not None else all_rules()):
        findings.extend(rule.check(module))
    return _apply_suppressions(module, findings)


def lint_paths(paths: Sequence[str],
               rules: Optional[List[Rule]] = None
               ) -> Tuple[List[LintViolation], List[LintError]]:
    """Lint every ``.py`` file under ``paths``.

    Returns ``(violations, errors)``; a clean run is ``([], [])``.
    """
    violations: List[LintViolation] = []
    errors: List[LintError] = []
    for path in discover_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            errors.append(LintError(path, str(exc)))
            continue
        try:
            violations.extend(lint_source(source, path=path, rules=rules))
        except SyntaxError as exc:
            errors.append(LintError(path, f"syntax error: {exc.msg} "
                                          f"(line {exc.lineno})"))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return violations, errors


# ---------------------------------------------------------------------------
# Machine-readable output and accept-current-findings baselines
# ---------------------------------------------------------------------------

#: Version of the JSON emitter / baseline file schema.
LINT_SCHEMA_VERSION = 1


def violations_payload(violations: Sequence[LintViolation],
                       errors: Sequence[LintError] = (),
                       baseline_suppressed: int = 0) -> dict:
    """The ``--format json`` document for one lint run."""
    return {
        "schema_version": LINT_SCHEMA_VERSION,
        "kind": "lint_report",
        "violations": [
            {"code": v.code, "rule": v.rule, "path": v.path,
             "line": v.line, "col": v.col + 1, "message": v.message}
            for v in violations],
        "errors": [{"path": e.path, "message": e.message}
                   for e in errors],
        "summary": {
            "violations": len(violations),
            "errors": len(errors),
            "baseline_suppressed": baseline_suppressed,
            "by_code": dict(sorted(Counter(
                v.code for v in violations).items())),
        },
    }


def baseline_key(violation: LintViolation) -> Tuple[str, str, str]:
    """The line-insensitive identity a baseline entry matches on."""
    return (violation.path.replace(os.sep, "/"), violation.code,
            violation.message)


def write_baseline(path: str,
                   violations: Sequence[LintViolation]) -> None:
    """Atomically snapshot the current findings as a baseline file."""
    from ..analysis.metrics import atomic_write_text
    counts = Counter(baseline_key(v) for v in violations)
    document = {
        "schema_version": LINT_SCHEMA_VERSION,
        "kind": "lint_baseline",
        "findings": [
            {"path": key[0], "code": key[1], "message": key[2],
             "count": count}
            for key, count in sorted(counts.items())],
    }
    atomic_write_text(path, json.dumps(document, indent=2,
                                       sort_keys=True) + "\n")


def load_baseline(path: str) -> Dict[Tuple[str, str, str], int]:
    """Parse a baseline file into its occurrence-count map.

    Raises ValueError on a malformed document (wrong kind/schema).
    """
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or \
            document.get("kind") != "lint_baseline":
        raise ValueError(f"{path}: not a lint baseline file")
    counts: Dict[Tuple[str, str, str], int] = {}
    for entry in document.get("findings", []):
        key = (str(entry["path"]), str(entry["code"]),
               str(entry["message"]))
        counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
    return counts


def filter_baseline(violations: Sequence[LintViolation],
                    baseline: Dict[Tuple[str, str, str], int]
                    ) -> Tuple[List[LintViolation], int]:
    """Subtract baselined findings; returns (new_violations, suppressed).

    Each baseline entry absorbs up to ``count`` identical findings; any
    excess occurrence (or a finding not in the baseline at all) is new.
    """
    remaining = dict(baseline)
    kept: List[LintViolation] = []
    suppressed = 0
    for violation in violations:
        key = baseline_key(violation)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            suppressed += 1
        else:
            kept.append(violation)
    return kept, suppressed


def _apply_suppressions(module: ModuleInfo,
                        findings: List[LintViolation]
                        ) -> List[LintViolation]:
    if any(_SKIP_FILE_RE.search(line) for line in module.lines):
        return []
    kept = []
    for violation in findings:
        line = (module.lines[violation.line - 1]
                if 0 < violation.line <= len(module.lines) else "")
        match = _IGNORE_RE.search(line)
        if match:
            tokens = {t.strip() for t in match.group(1).split(",")}
            if violation.code in tokens or violation.rule in tokens:
                continue
        kept.append(violation)
    return kept
