"""Static protocol-discipline lint rules.

Every rule inspects the AST of one module and reports
:class:`LintViolation` instances.  Rules register themselves in
:data:`RULES` via the :func:`rule` decorator, so adding a check is one
class away -- the driver (`repro.lint.linter`) and the CLI pick it up
automatically.

Most rules scope themselves to **process code**: functions that contain
a ``yield`` in their own body (protocol generators).  That is exactly
the code the scheduler drives one atomic step at a time, where the
discipline matters:

* shared state may only be touched by *yielding* an
  :class:`~repro.runtime.ops.Invocation` (never by calling an object's
  ``op_*`` handler or a store's ``apply`` directly) -- a bypass executes
  outside the scheduler's atomic-step accounting, invisible to traces,
  crash plans and the DPOR explorer;
* process code must be deterministic given the schedule -- any
  nondeterminism source (the shared ``random`` module RNG, wall-clock
  time, ``id()``, iteration over unordered sets) breaks the prefix
  replay that both exploration engines and counterexample shrinking
  rely on;
* every ``yield`` must produce an operation descriptor -- yielding a
  bare literal burns a scheduler step on garbage and usually signals a
  forgotten proxy call.

One rule (:class:`XPortArity`) is not generator-scoped: it checks the
statically-checkable slice of the paper's port discipline, i.e. literal
port sets wired to object constructors whose consensus number the port
set must not exceed (Section 2.3: an object of consensus number x is
accessible by at most x statically defined processes).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Type


@dataclass(frozen=True)
class LintViolation:
    """One finding: rule, location, and a human-readable message."""

    code: str
    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.code} [{self.rule}] {self.message}")


class Rule:
    """Base class for lint rules; subclasses set code/name/description."""

    code: str = ""
    name: str = ""
    description: str = ""

    def check(self, module: "ModuleInfo") -> Iterator[LintViolation]:
        raise NotImplementedError

    def violation(self, module: "ModuleInfo", node: ast.AST,
                  message: str) -> LintViolation:
        return LintViolation(
            code=self.code, rule=self.name, path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0), message=message)


#: Registry of rule classes, keyed by code (also addressable by name).
RULES: Dict[str, Type[Rule]] = {}


def rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: register a rule under its code."""
    if not cls.code or not cls.name:
        raise ValueError(f"rule {cls.__name__} needs a code and a name")
    if cls.code in RULES:
        raise ValueError(f"duplicate rule code {cls.code!r}")
    RULES[cls.code] = cls
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in code order."""
    return [RULES[code]() for code in sorted(RULES)]


class ModuleInfo:
    """One parsed module plus the helpers rules share."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()

    def generator_functions(self) -> Iterator[ast.AST]:
        """Every function whose *own* body yields (protocol generators)."""
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if any(isinstance(inner, (ast.Yield, ast.YieldFrom))
                       for inner in _own_body_walk(node)):
                    yield node


def _own_body_walk(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested functions
    (each nested function is its own process-code scope)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


# ---------------------------------------------------------------------------
# D101: shared-state mutation that bypasses the yield/Invocation discipline
# ---------------------------------------------------------------------------

@rule
class DirectStateAccess(Rule):
    code = "D101"
    name = "direct-state-access"
    description = (
        "Process code called an object's op_* handler or a store's "
        "apply() directly instead of yielding an Invocation; the step "
        "bypasses the scheduler (no atomicity accounting, no trace, no "
        "DPOR footprint).")

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        for func in module.generator_functions():
            for node in _own_body_walk(func):
                if not isinstance(node, ast.Call):
                    continue
                target = node.func
                if not isinstance(target, ast.Attribute):
                    continue
                if target.attr.startswith("op_"):
                    yield self.violation(
                        module, node,
                        f"direct call of operation handler "
                        f"'.{target.attr}(...)' inside a protocol "
                        f"generator; yield the Invocation instead")
                elif target.attr == "apply":
                    yield self.violation(
                        module, node,
                        "direct '.apply(...)' call inside a protocol "
                        "generator bypasses the scheduler; yield the "
                        "Invocation instead")


# ---------------------------------------------------------------------------
# N201: nondeterminism sources that break schedule replay
# ---------------------------------------------------------------------------

#: Module-level functions whose results vary between replays.
_NONDET_CALLS = {
    "random": {"random", "randint", "randrange", "choice", "choices",
               "shuffle", "sample", "uniform", "getrandbits", "betavariate",
               "gauss", "normalvariate", "triangular"},
    "time": {"time", "time_ns", "monotonic", "monotonic_ns",
             "perf_counter", "perf_counter_ns", "process_time"},
    "os": {"urandom", "getrandom"},
    "uuid": {"uuid1", "uuid4"},
    "secrets": None,  # the whole module is a nondeterminism source
}


@rule
class Nondeterminism(Rule):
    code = "N201"
    name = "nondeterminism"
    description = (
        "Process code used a source of nondeterminism (shared random "
        "RNG, wall clock, id(), unordered set iteration); DPOR and "
        "counterexample replay require runs to be a pure function of "
        "the schedule.")

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        for func in module.generator_functions():
            for node in _own_body_walk(func):
                yield from self._check_node(module, node)

    def _check_node(self, module, node) -> Iterator[LintViolation]:
        if isinstance(node, ast.Call):
            yield from self._check_call(module, node)
        elif isinstance(node, (ast.For, ast.comprehension)):
            iterable = node.iter
            if self._is_unordered(iterable):
                yield self.violation(
                    module, iterable,
                    "iteration over an unordered set in process code; "
                    "iteration order varies between runs -- iterate a "
                    "sorted() or a list instead")

    def _check_call(self, module, node: ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "id":
                yield self.violation(
                    module, node,
                    "id() depends on memory layout and varies between "
                    "replays; use the pid or an explicit counter")
            return
        if not isinstance(func, ast.Attribute):
            return
        base = func.value
        if not isinstance(base, ast.Name):
            return
        allowed = _NONDET_CALLS.get(base.id)
        if base.id in _NONDET_CALLS and (allowed is None
                                         or func.attr in allowed):
            yield self.violation(
                module, node,
                f"'{base.id}.{func.attr}(...)' is a nondeterminism "
                f"source in process code; derive choices from the pid "
                f"or a seeded random.Random instance created outside "
                f"the protocol")

    @staticmethod
    def _is_unordered(node: ast.AST) -> bool:
        if isinstance(node, ast.Set):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in {"set", "frozenset"})


# ---------------------------------------------------------------------------
# Y301: yields that cannot be operation descriptors
# ---------------------------------------------------------------------------

@rule
class YieldDescriptor(Rule):
    code = "Y301"
    name = "yield-descriptor"
    description = (
        "A protocol generator yielded a bare literal (or nothing); the "
        "scheduler only accepts Invocation/SpinOp descriptors, so this "
        "is a dropped operation or a stray generator yield.")

    _LITERALS = (ast.Constant, ast.List, ast.Dict, ast.Set, ast.Tuple,
                 ast.JoinedStr)

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        for func in module.generator_functions():
            markers = self._generator_markers(func)
            for node in _own_body_walk(func):
                if not isinstance(node, ast.Yield):
                    continue
                if node.value is None:
                    if node in markers:
                        continue
                    yield self.violation(
                        module, node,
                        "bare 'yield' in a protocol generator; every "
                        "step must yield an Invocation or SpinOp")
                elif isinstance(node.value, self._LITERALS):
                    rendered = ast.dump(node.value)
                    if len(rendered) > 40:
                        rendered = rendered[:40] + "..."
                    yield self.violation(
                        module, node,
                        f"yield of literal {rendered}; the scheduler "
                        f"only executes Invocation/SpinOp descriptors")

    @staticmethod
    def _generator_markers(func: ast.AST) -> set:
        """Unreachable bare yields directly after a return.

        ``return value`` followed by a dead ``yield`` is the idiom for
        'this function is a generator that decides immediately'; the
        yield never executes, so it is exempt.
        """
        markers = set()
        nodes = [func]
        nodes.extend(_own_body_walk(func))
        for node in nodes:
            for stmts in (getattr(node, "body", None),
                          getattr(node, "orelse", None),
                          getattr(node, "finalbody", None)):
                if not isinstance(stmts, list):
                    continue
                for prev, cur in zip(stmts, stmts[1:]):
                    if (isinstance(prev, ast.Return)
                            and isinstance(cur, ast.Expr)
                            and isinstance(cur.value, ast.Yield)
                            and cur.value.value is None):
                        markers.add(cur.value)
        return markers


# ---------------------------------------------------------------------------
# X401: statically-checkable x-port violations
# ---------------------------------------------------------------------------

#: Constructors/spec kinds with a fixed consensus number whose port set
#: is bounded by it (paper Section 2.3).  XConsensusObject/KSetObject
#: size their consensus number from the port set and cannot violate.
_FIXED_CN_CONSTRUCTORS = {"TestAndSetObject": 2}
_FIXED_CN_KINDS = {"tas": 2, "queue": 2, "stack": 2}


@rule
class XPortArity(Rule):
    code = "X401"
    name = "x-port-arity"
    description = (
        "An object of consensus number x was wired to a literal port "
        "set of more than x processes; the ASM model only permits "
        "consensus-number-x objects accessible by at most x statically "
        "defined processes.")

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            yield from self._check_call(module, node)

    def _check_call(self, module, node: ast.Call):
        func = node.func
        callee = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None)
        if callee is None:
            return
        ports = self._literal_ports(node)
        if ports is None:
            return
        if callee in _FIXED_CN_CONSTRUCTORS:
            cn = _FIXED_CN_CONSTRUCTORS[callee]
            if ports > cn:
                yield self.violation(
                    module, node,
                    f"{callee} has consensus number {cn} but is wired "
                    f"to {ports} ports")
        elif callee == "make_spec" and node.args:
            kind = node.args[0]
            if (isinstance(kind, ast.Constant)
                    and kind.value in _FIXED_CN_KINDS):
                cn = _FIXED_CN_KINDS[kind.value]
                if ports > cn:
                    yield self.violation(
                        module, node,
                        f"spec kind {kind.value!r} has consensus number "
                        f"{cn} but is wired to {ports} ports")

    @staticmethod
    def _literal_ports(node: ast.Call):
        """Size of a literal ports= collection, or None if not literal."""
        for kw in node.keywords:
            if kw.arg == "ports" and isinstance(
                    kw.value, (ast.List, ast.Tuple, ast.Set)):
                return len(kw.value.elts)
        return None
