"""Footprint-soundness lint rules (F5xx): the static half of the audit.

PR 2 added the *dynamic* footprint auditor (`repro.lint.audit`): it
state-diffs executed operations against their declared footprints, but
only on schedules that actually run, so a lying declaration in a
rarely-taken branch survives until some exploration happens to take it
-- and until then DPOR silently prunes real interleavings.  These rules
close the gap statically, over **all** paths, at lint time:

* **F501 footprint-under-approximation** -- abstract interpretation of
  every ``op_*`` handler (`repro.lint.infer`) derives the set of state
  locations the handler may read/write; any access the class's declared
  ``footprint()`` does not cover is reported.  The soundness chain is:
  inferred ⊇ actual accesses (the interpreter over-approximates), so
  declared ⊇ inferred ⇒ declared ⊇ actual ⇒ the DPOR independence
  relation is sound.
* **F502 unreachable-yield** -- the yield-point CFG (`repro.lint.cfg`)
  proves a yield can never execute: a dropped operation (the sanctioned
  ``return``-then-bare-``yield`` generator marker is exempt).
* **F503 conflicting-op-without-yield-boundary** -- a yielded proxy
  invocation whose arguments contain *another* invocation on the same
  object: the two conflicting operations share one atomic step and the
  inner descriptor never reaches the scheduler.

All three ride the standard machinery: the :data:`~repro.lint.rules.RULES`
registry, ``# lint: ignore[CODE]`` suppressions, and the CLI exit codes.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from .cfg import build_cfg, marker_yields
from .infer import analyze_module_classes
from .rules import LintViolation, ModuleInfo, Rule, rule


# ---------------------------------------------------------------------------
# F501: declared footprint does not cover the inferred one
# ---------------------------------------------------------------------------

@rule
class FootprintUnderApproximation(Rule):
    code = "F501"
    name = "footprint-under-approximation"
    description = (
        "An op_* handler may touch state its declared footprint() "
        "omits; an under-approximated footprint makes the DPOR "
        "independence relation unsound (real interleavings are "
        "silently pruned).")

    def __init__(self) -> None:
        #: Accumulated over every module this instance checks
        #: (consumed by bench_lint_analysis).
        self.stats = {"classes": 0, "ops_checked": 0,
                      "ops_unevaluable": 0, "ops_widened": 0,
                      "findings": 0}

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        for analysis in analyze_module_classes(module):
            self.stats["classes"] += 1
            for check in analysis.checks:
                if check.declared is None:
                    self.stats["ops_unevaluable"] += 1
                    continue
                self.stats["ops_checked"] += 1
                if check.effects is not None and check.effects.widened:
                    self.stats["ops_widened"] += 1
                # Suppression comments go on the handler's def line when
                # the handler lives here, else on the class header.
                node: ast.AST = (check.fdef if check.defined_here
                                 else analysis.classdef)
                where = ("" if check.defined_here else
                         f" (inherited by {analysis.classdef.name})")
                for access in check.uncovered_writes:
                    self.stats["findings"] += 1
                    yield self.violation(
                        module, node,
                        f"{analysis.classdef.name}.{check.op}{where} may "
                        f"write {access.render()} but the declared "
                        f"footprint ({check.declared.render()}) does not "
                        f"cover it; an undeclared write unsoundifies "
                        f"DPOR pruning")
                for access in check.uncovered_reads:
                    self.stats["findings"] += 1
                    yield self.violation(
                        module, node,
                        f"{analysis.classdef.name}.{check.op}{where} may "
                        f"read {access.render()} but the declared "
                        f"footprint ({check.declared.render()}) does not "
                        f"cover it; an undeclared read unsoundifies "
                        f"DPOR pruning")


# ---------------------------------------------------------------------------
# F502: a yield no control-flow path can reach
# ---------------------------------------------------------------------------

@rule
class UnreachableYield(Rule):
    code = "F502"
    name = "unreachable-yield"
    description = (
        "A protocol generator contains a yield that no control-flow "
        "path from the function entry can reach: the operation is "
        "dead (dropped step), usually a refactoring leftover.  The "
        "return-then-bare-yield generator marker is exempt.")

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        for func in module.generator_functions():
            cfg = build_cfg(func)
            markers = marker_yields(func)
            for node in cfg.unreachable_yields():
                if node in markers:
                    continue
                kind = ("yield from"
                        if isinstance(node, ast.YieldFrom) else "yield")
                yield self.violation(
                    module, node,
                    f"unreachable '{kind}' in protocol generator "
                    f"'{func.name}': no path from the function entry "
                    f"reaches this step, so the operation never "
                    f"executes")


# ---------------------------------------------------------------------------
# F503: two conflicting ops fused into one atomic step
# ---------------------------------------------------------------------------

@rule
class ConflictingOpWithoutBoundary(Rule):
    code = "F503"
    name = "conflicting-op-without-yield-boundary"
    description = (
        "A yielded invocation's arguments contain another invocation "
        "on the same object: the two conflicting operations share one "
        "atomic yield boundary, and the inner Invocation descriptor is "
        "passed as data instead of reaching the scheduler.")

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        for func in module.generator_functions():
            cfg = build_cfg(func)
            for node in cfg.yields:
                if not isinstance(node, ast.Yield) or node.value is None:
                    continue
                yield from self._check_yield(module, node)

    def _check_yield(self, module: ModuleInfo,
                     node: ast.Yield) -> Iterator[LintViolation]:
        outer = node.value
        if not (isinstance(outer, ast.Call)
                and isinstance(outer.func, ast.Attribute)):
            return
        base = _dotted_name(outer.func.value)
        if base is None:
            return
        for inner in _nested_calls(outer):
            if not isinstance(inner.func, ast.Attribute):
                continue
            if _dotted_name(inner.func.value) != base:
                continue
            yield self.violation(
                module, node,
                f"yield of '{base}.{outer.func.attr}(...)' embeds "
                f"'{base}.{inner.func.attr}(...)' in its arguments: "
                f"two conflicting operations on '{base}' share one "
                f"atomic step and the inner Invocation never reaches "
                f"the scheduler; yield it as its own step first")


def _dotted_name(expr: ast.expr) -> Optional[str]:
    """Render Name / Name-attribute chains ('mem', 'state.MEM')."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        base = _dotted_name(expr.value)
        return None if base is None else f"{base}.{expr.attr}"
    return None


def _nested_calls(outer: ast.Call) -> Iterator[ast.Call]:
    """Calls nested in a call's arguments (lambdas excluded: deferred)."""
    stack: List[ast.AST] = list(outer.args)
    stack.extend(kw.value for kw in outer.keywords)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Lambda, ast.FunctionDef,
                             ast.AsyncFunctionDef)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))
