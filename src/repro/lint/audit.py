"""Dynamic footprint-soundness auditor.

The DPOR explorer (`repro.runtime.dpor`) prunes interleavings using the
read/write footprints that shared objects *declare*
(:meth:`~repro.memory.base.SharedObject.footprint`).  Declarations must
over-approximate what operations actually touch: an under-approximated
footprint makes DPOR treat two conflicting steps as independent and
silently skip real interleavings -- the worst possible failure mode for
an exhaustive checker, because it reports "proved" over a schedule space
it never visited.

:class:`AuditingStore` wraps an :class:`~repro.memory.store.ObjectStore`
and validates every executed operation against its declaration:

* **write soundness** -- the per-location state of *every* object
  (:meth:`~repro.memory.base.SharedObject.audit_state`) is diffed around
  the operation; any changed location must be covered by the declared
  write set.
* **read soundness** -- the operation is replayed against a deep copy of
  its target object in which every location *not* covered by the
  declared read set has been poisoned
  (:meth:`~repro.memory.base.SharedObject.audit_set`).  If the replay
  diverges from the real execution -- different result, an exception, or
  a state delta that is neither "location left untouched" nor "location
  rewritten to the real post-value" -- the operation observed state it
  never declared.

Violations raise :class:`FootprintViolation` with the object, the
operation, and the declared-vs-observed evidence ("fails loudly").
:func:`audit_scenario` runs a named check scenario under a battery of
adversaries with auditing on; the CLI front-end is
``python -m repro audit <scenario>``.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..memory.base import SharedObject
from ..runtime.ops import Footprint, Invocation, _keys_overlap

#: Seeds for the default adversary battery (mirrors the test suite's).
DEFAULT_AUDIT_SEEDS = (0, 1, 2, 3, 7, 11, 42)


class FootprintViolation(RuntimeError):
    """An executed operation escaped its declared footprint."""

    def __init__(self, obj_name: str, pid: int, invocation: Invocation,
                 declared: Footprint, kind: str, evidence: str) -> None:
        self.obj_name = obj_name
        self.pid = pid
        self.invocation = invocation
        self.declared = declared
        self.kind = kind  # "write" or "read"
        self.evidence = evidence
        super().__init__(
            f"footprint {kind}-soundness violation: p{pid} executed "
            f"{invocation!r} on object {obj_name!r}\n"
            f"  declared: {declared!r}\n"
            f"  observed: {evidence}")

    def __reduce__(self):
        # Default exception pickling replays ``args`` (the formatted
        # message) into our 6-argument ``__init__``; rebuild from the
        # real fields instead so violations survive worker pipes.
        return (FootprintViolation,
                (self.obj_name, self.pid, self.invocation,
                 self.declared, self.kind, self.evidence))


class _Poison:
    """Unique marker written into undeclared locations before a replay.

    Hashable and iterable (yielding itself) so it survives being wrapped
    in the container-shaped state fragments family objects report
    (e.g. ``frozenset(callers)``); identity is what matters.
    """

    __slots__ = ("location",)

    def __init__(self, location: Any) -> None:
        self.location = location

    def __iter__(self):
        yield self

    def __repr__(self) -> str:
        return f"<poison@{self.location!r}>"


def _covered(obj_name: str, key: Any, declared) -> bool:
    """Is ``(obj_name, key)`` covered by a declared location set?"""
    return any(obj == obj_name and _keys_overlap(key, dkey)
               for obj, dkey in declared)


class AuditingStore:
    """Object-store wrapper that audits every operation it dispatches.

    Drop-in for :class:`~repro.memory.store.ObjectStore` wherever the
    runtime reads from a store (scheduler dispatch, oracle binding,
    DPOR footprint queries).  ``perturb=False`` disables the replay-based
    read audit and keeps only the state-diff write audit (cheaper, and
    sufficient for objects without :meth:`audit_set` support).
    """

    def __init__(self, store, perturb: bool = True) -> None:
        self._store = store
        self.perturb = perturb
        self.audited_ops = 0
        self.skipped_ops = 0

    # -- delegation ----------------------------------------------------
    def add(self, obj):
        return self._store.add(obj)

    def add_all(self, objs) -> None:
        self._store.add_all(objs)

    def __getitem__(self, name: str):
        return self._store[name]

    def __contains__(self, name: str) -> bool:
        return name in self._store

    def __iter__(self):
        return iter(self._store)

    def __len__(self) -> int:
        return len(self._store)

    def get(self, name: str):
        return self._store.get(name)

    def is_readonly(self, inv: Invocation) -> bool:
        return self._store.is_readonly(inv)

    def footprint(self, pid: int, inv: Invocation):
        return self._store.footprint(pid, inv)

    @property
    def op_count(self) -> int:
        return self._store.op_count

    # -- audited dispatch ----------------------------------------------
    def apply(self, pid: int, inv: Invocation) -> Any:
        target = self._store[inv.obj]
        declared = self._store.footprint(pid, inv)
        if getattr(target, "oracle", False) or declared is None:
            # Oracles read the run's crash state, which lives outside
            # the shared-memory footprint model; an unknown (None)
            # footprint already conflicts with everything in DPOR.
            self.skipped_ops += 1
            return self._store.apply(pid, inv)
        pre = self._snapshot_all()
        replay_target = self._replay_copy(target)
        result = self._store.apply(pid, inv)
        post = self._snapshot_all()
        self._check_writes(pid, inv, declared, pre, post)
        if self.perturb and replay_target is not None:
            self._check_reads(pid, inv, declared, replay_target,
                              result, post.get(inv.obj, {}))
        self.audited_ops += 1
        return result

    # -- helpers -------------------------------------------------------
    def _snapshot_all(self) -> Dict[str, Dict[Any, Any]]:
        states: Dict[str, Dict[Any, Any]] = {}
        for obj in self._store:
            if getattr(obj, "oracle", False):
                continue
            try:
                states[obj.name] = copy.deepcopy(obj.audit_state())
            except Exception:
                # Un-copyable state cannot be diffed; leave the object
                # out rather than aborting the run.
                pass
        return states

    @staticmethod
    def _replay_copy(target: SharedObject) -> Optional[SharedObject]:
        try:
            return copy.deepcopy(target)
        except Exception:
            return None

    def _check_writes(self, pid, inv, declared, pre, post) -> None:
        escaped: List[str] = []
        for name in sorted(set(pre) | set(post)):
            before = pre.get(name, {})
            after = post.get(name, {})
            obj = self._store[name]
            for key in set(before) | set(after):
                # An absent location holds the object's semantic default
                # (⊥ for lazy families, MISSING_STATE -- equal to
                # nothing -- otherwise), so lazily materializing a
                # default-valued location is not a write.
                old = before.get(key, obj.audit_default(key))
                new = after.get(key, obj.audit_default(key))
                if _fragments_equal(old, new):
                    continue
                if not _covered(name, key, declared.writes):
                    escaped.append(
                        f"{name}[{key!r}] changed {old!r} -> {new!r}")
        if escaped:
            raise FootprintViolation(
                inv.obj, pid, inv, declared, "write",
                "operation wrote location(s) outside its declared "
                "write set: " + "; ".join(escaped))

    def _check_reads(self, pid, inv, declared, replay_target,
                     result, baseline_post) -> None:
        try:
            locations = replay_target.audit_state()
        except Exception:
            return
        undeclared = [key for key in locations
                      if not _covered(inv.obj, key, declared.reads)]
        poison = _Poison(inv.obj)
        poisoned = [key for key in undeclared
                    if replay_target.audit_set(key, poison)]
        if not poisoned:
            return
        poisoned_pre = copy_fragments(replay_target)
        try:
            replay_result = replay_target.apply(pid, inv.method, inv.args)
        except Exception as exc:
            raise FootprintViolation(
                inv.obj, pid, inv, declared, "read",
                f"operation raised {type(exc).__name__}: {exc} once "
                f"undeclared location(s) {sorted(map(repr, poisoned))} "
                f"were perturbed -- it reads state outside its declared "
                f"read set")
        if replay_result != result:
            raise FootprintViolation(
                inv.obj, pid, inv, declared, "read",
                f"result changed from {result!r} to {replay_result!r} "
                f"once undeclared location(s) "
                f"{sorted(map(repr, poisoned))} were perturbed")
        try:
            replay_post = replay_target.audit_state()
        except Exception:
            replay_post = None
        if replay_post is None:
            return
        obj = self._store[inv.obj]
        poisoned_set = set(poisoned)
        for key in set(replay_post) | set(baseline_post):
            actual = baseline_post.get(key, obj.audit_default(key))
            replayed = replay_post.get(key, obj.audit_default(key))
            if key in poisoned_set:
                # Legal outcomes: untouched (still the poisoned
                # fragment) or blindly rewritten to the real post-value.
                if (_fragments_equal(replayed, poisoned_pre.get(key))
                        or _fragments_equal(replayed, actual)):
                    continue
                raise FootprintViolation(
                    inv.obj, pid, inv, declared, "read",
                    f"location {key!r} ended as {replayed!r} (expected "
                    f"untouched poison or {actual!r}); the written "
                    f"value depends on state outside the declared "
                    f"read set")
            elif not _fragments_equal(replayed, actual):
                raise FootprintViolation(
                    inv.obj, pid, inv, declared, "read",
                    f"location {key!r} ended as {replayed!r} instead "
                    f"of {actual!r} once undeclared location(s) "
                    f"{sorted(map(repr, poisoned))} were perturbed")


def copy_fragments(target: SharedObject) -> Dict[Any, Any]:
    """Shallow capture of a poisoned pre-state (identity-preserving)."""
    try:
        return dict(target.audit_state())
    except Exception:
        return {}


def _fragments_equal(a: Any, b: Any) -> bool:
    try:
        return bool(a == b)
    except Exception:
        return a is b


# ---------------------------------------------------------------------------
# Scenario-level audit runner
# ---------------------------------------------------------------------------

@dataclass
class AuditReport:
    """Coverage of one scenario audit: runs executed, ops checked."""

    scenario: str
    runs: int = 0
    audited_ops: int = 0
    skipped_ops: int = 0
    adversaries: List[str] = field(default_factory=list)

    def __str__(self) -> str:
        text = (f"{self.scenario}: {self.runs} runs, "
                f"{self.audited_ops} operations audited")
        if self.skipped_ops:
            text += f" ({self.skipped_ops} oracle ops skipped)"
        return text


def _audit_one(scenario, adversary, max_steps: int, perturb: bool):
    """One audited run; returns ``(audited_ops, skipped_ops, repr)``.

    The adversary is reported by ``repr`` rather than class name so a
    seeded adversary's seed lands in the report (and in the metrics
    record): a failing randomized audit is reproducible from the report
    alone.
    """
    from ..runtime import run_processes
    programs, store = scenario.build()
    audited = AuditingStore(store, perturb=perturb)
    crash_plan = (scenario.crash_plan_factory()
                  if scenario.crash_plan_factory else None)
    result = run_processes(programs, audited, adversary=adversary,
                           crash_plan=crash_plan, max_steps=max_steps)
    if result.out_of_steps:
        raise RuntimeError(
            f"audit of {scenario.name!r} exhausted max_steps="
            f"{max_steps} under {adversary!r}")
    return (audited.audited_ops, audited.skipped_ops, repr(adversary))


def audit_scenario(scenario, adversaries: Optional[Sequence] = None,
                   max_steps: int = 100_000,
                   perturb: bool = True,
                   jobs: Optional[int] = None) -> AuditReport:
    """Run ``scenario`` under auditing with a battery of adversaries.

    Raises :class:`FootprintViolation` on the first unsound declaration
    and ``RuntimeError`` if a run exhausts ``max_steps``; returns an
    :class:`AuditReport` when every executed operation stayed inside its
    declared footprint.  With ``jobs``, the per-adversary runs execute
    on a worker pool (:func:`repro.runtime.parallel.run_pool`); failures
    are re-raised in adversary order, so the outcome does not depend on
    worker timing.
    """
    from ..runtime import RoundRobinAdversary, SeededRandomAdversary
    if adversaries is None:
        adversaries = [RoundRobinAdversary()] + [
            SeededRandomAdversary(seed) for seed in DEFAULT_AUDIT_SEEDS]
    report = AuditReport(scenario=scenario.name)

    if jobs is not None and jobs > 1:
        from ..runtime.parallel import run_pool

        def run_one(index):
            try:
                return _audit_one(scenario, adversaries[index],
                                  max_steps, perturb), None
            except (FootprintViolation, RuntimeError) as exc:
                # Ship the typed failure as a value: run_pool's generic
                # error channel is strings, and the caller re-raises.
                return None, exc

        outcomes = run_pool(list(range(len(adversaries))), run_one,
                            jobs=jobs)
        for index, (value, error) in enumerate(outcomes):
            if error is not None:
                raise RuntimeError(
                    f"audit worker failed on adversary {index}: {error}")
            ok, failure = value
            if failure is not None:
                raise failure
            audited_ops, skipped_ops, name = ok
            report.runs += 1
            report.audited_ops += audited_ops
            report.skipped_ops += skipped_ops
            report.adversaries.append(name)
        return report

    for adversary in adversaries:
        audited_ops, skipped_ops, name = _audit_one(
            scenario, adversary, max_steps, perturb)
        report.runs += 1
        report.audited_ops += audited_ops
        report.skipped_ops += skipped_ops
        report.adversaries.append(name)
    return report
