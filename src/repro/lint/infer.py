"""Static footprint inference for shared-object operation handlers.

The DPOR explorer prunes interleavings using each object's *declared*
:meth:`~repro.memory.base.SharedObject.footprint`; the whole stack is
sound only if every declaration over-approximates what the handler
actually touches.  This module proves that relation statically, without
executing a single schedule:

1. resolve each class's base chain across modules (pure AST loading via
   ``importlib.util.find_spec`` -- nothing is imported or executed);
2. evaluate the class's effective ``footprint()`` declaration per
   operation into a set of *abstract key paths*;
3. abstractly interpret the ``op_*`` handler body, recording every read
   and write of ``self`` state at the finest key that is still sound --
   a literal, an ``args[i]`` position, or the caller's ``pid`` -- and
   **widening to an unknown key** (covered only by a declared
   :data:`~repro.runtime.ops.WHOLE`) whenever the key is computed;
4. check that every inferred access is covered by a declared path.

The inferred footprint over-approximates the handler's *observable*
accesses: all branches are unioned (no path sensitivity), unknown keys
widen, and unknown attribute or method effects degrade to
whole-instance access.  Reads follow the same observational semantics
as the dynamic auditor's poison-and-replay: a value the handler loads
but never lets influence its result or the final state is not a read,
and lazily materializing default-shaped state (the family
``audit_default`` idiom) is not a write.

Attributes listed in a class's ``AUDIT_EXCLUDE`` -- instrumentation
counters and static configuration, already outside the dynamic
auditor's state view -- are likewise outside the inferred footprint.
"""

from __future__ import annotations

import ast
import importlib.util
import os
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Optional, Sequence, Set,
                    Tuple)

from .rules import ModuleInfo

# ---------------------------------------------------------------------------
# Abstract keys and access paths
# ---------------------------------------------------------------------------


class _SentinelKey:
    """A singleton abstract key (WHOLE / UNKNOWN / PID)."""

    __slots__ = ("label",)

    def __init__(self, label: str) -> None:
        self.label = label

    def __repr__(self) -> str:
        return self.label


#: The declared wildcard key (covers every key).
WHOLE_KEY = _SentinelKey("*")
#: A key the analysis could not pin down (widened: only WHOLE covers it,
#: and as a declared key it covers nothing).
UNKNOWN_KEY = _SentinelKey("?")
#: The invoking process id (``pid``), a port-derived key.
PID_KEY = _SentinelKey("pid")


@dataclass(frozen=True)
class Lit:
    """A literal key (``self.cells[0]`` -> ``Lit(0)``)."""

    value: Any

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Arg:
    """The i-th operation argument used as a key (0-based, pid excluded)."""

    index: int

    def __repr__(self) -> str:
        return f"args[{self.index}]"


#: A key path addresses nested state: ``(Arg(0), Lit(3))`` is instance
#: ``args[0]``, entry 3.  Declared footprint keys flatten to paths too.
Path = Tuple[Any, ...]


@dataclass(frozen=True)
class Access:
    """One inferred state access: ``self.<attr>`` at ``path``.

    ``attr`` is informational (shown in messages); coverage is checked
    on the path alone, because declared footprint keys address object
    state through the ``audit_state`` location scheme, not through
    attribute names.  ``attr == "*"`` means the analysis degraded to
    whole-instance access.
    """

    attr: str
    path: Path

    def render(self) -> str:
        return "self." + self.attr + "".join(
            f"[{key!r}]" for key in self.path)


def flatten_key(key: Any) -> Path:
    """Flatten an abstract key (possibly a tuple) into a path."""
    if isinstance(key, tuple):
        out: List[Any] = []
        for element in key:
            out.extend(flatten_key(element))
        return tuple(out)
    return (key,)


def render_path(path: Path) -> str:
    if not path:
        return "()"
    return "(" + ", ".join(repr(k) for k in path) + ")"


# -- coverage ---------------------------------------------------------------

def _key_covers(declared: Any, access: Any) -> bool:
    if declared is WHOLE_KEY:
        return True
    if declared is UNKNOWN_KEY or access is UNKNOWN_KEY:
        return False
    if access is WHOLE_KEY:
        return False
    return declared == access


def _path_covers(declared: Path, access: Path) -> bool:
    for d_key, a_key in zip(declared, access):
        if not _key_covers(d_key, a_key):
            return False
    if len(access) >= len(declared):
        return True
    # The access addresses a *coarser* location than the declaration
    # (e.g. the whole instance vs. a per-entry key): covered only if the
    # remaining declared components are wildcards.
    return all(key is WHOLE_KEY for key in declared[len(access):])


def path_covered(access: Path, declared: Set[Path]) -> bool:
    """Is one inferred access path covered by a declared key set?"""
    return any(_path_covers(d, access) for d in declared)


# ---------------------------------------------------------------------------
# Cross-module class resolution (AST only, nothing imported)
# ---------------------------------------------------------------------------

#: module name -> (tree, path) or None when unloadable.
_MODULE_CACHE: Dict[str, Optional[Tuple[ast.Module, str]]] = {}

#: Base names that terminate a chain without reaching SharedObject.
_STOP_BASES = {"object", "ABC", "ABCMeta", "Exception", "Generic",
               "Protocol", "Enum", "NamedTuple"}


def clear_caches() -> None:
    """Drop the cross-module AST cache (tests that write temp modules)."""
    _MODULE_CACHE.clear()


def _module_name_for(path: str) -> Tuple[Optional[str], bool]:
    """Dotted module name of a file path, walking up ``__init__.py``.

    Returns ``(name, is_package)``; ``(None, False)`` for non-files
    (e.g. ``<string>`` sources), which simply disables relative-import
    resolution for that module.
    """
    if not path.endswith(".py") or not os.path.exists(path):
        return None, False
    path = os.path.abspath(path)
    dirname, base = os.path.split(path)
    is_package = base == "__init__.py"
    parts = [] if is_package else [base[:-3]]
    while os.path.exists(os.path.join(dirname, "__init__.py")):
        dirname, pkg = os.path.split(dirname)
        parts.insert(0, pkg)
    if not parts:
        return None, False
    return ".".join(parts), is_package


def _load_module(modname: str) -> Optional[Tuple[ast.Module, str]]:
    if modname in _MODULE_CACHE:
        return _MODULE_CACHE[modname]
    result: Optional[Tuple[ast.Module, str]] = None
    try:
        spec = importlib.util.find_spec(modname)
        origin = getattr(spec, "origin", None)
        if origin and origin.endswith(".py"):
            with open(origin, "r", encoding="utf-8") as handle:
                result = (ast.parse(handle.read(), filename=origin), origin)
    except Exception:
        result = None
    _MODULE_CACHE[modname] = result
    return result


class _ModuleCtx:
    """Symbol tables of one module: classes and import bindings."""

    def __init__(self, tree: ast.Module, path: str) -> None:
        self.tree = tree
        self.path = path
        self.modname, self.is_package = _module_name_for(path)
        self.classes: Dict[str, ast.ClassDef] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                self.classes.setdefault(node.name, node)
        #: local name -> (module, attr-or-None)
        self.imports: Dict[str, Tuple[str, Optional[str]]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    self.imports[bound] = (target, None)
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from(node)
                if base is None:
                    continue
                for alias in node.names:
                    bound = alias.asname or alias.name
                    self.imports[bound] = (base, alias.name)

    def _resolve_from(self, node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module
        if self.modname is None:
            return None
        parts = self.modname.split(".")
        if not self.is_package:
            parts = parts[:-1]
        if node.level > 1:
            if node.level - 1 > len(parts):
                return None
            parts = parts[:len(parts) - (node.level - 1)]
        if not parts:
            return None
        return ".".join(parts + ([node.module] if node.module else []))


_CTX_CACHE: Dict[int, _ModuleCtx] = {}


def _ctx_for(tree: ast.Module, path: str) -> _ModuleCtx:
    ctx = _CTX_CACHE.get(id(tree))
    if ctx is None or ctx.path != path:
        ctx = _ModuleCtx(tree, path)
        _CTX_CACHE[id(tree)] = ctx
    return ctx


@dataclass
class ClassInfo:
    """One class definition plus the module context it lives in."""

    classdef: ast.ClassDef
    ctx: _ModuleCtx

    @property
    def name(self) -> str:
        return self.classdef.name


@dataclass
class ClassModel:
    """A class's resolved base chain and effective static attributes."""

    chain: List[ClassInfo]          # the class itself first
    is_shared: bool                 # chain reaches SharedObject
    fully_resolved: bool            # no base was unresolvable
    oracle: bool
    readonly: Set[str]
    audit_exclude: Set[str]

    def find_method(self, name: str,
                    start: int = 0) -> Optional[Tuple[ast.FunctionDef, int]]:
        for index in range(start, len(self.chain)):
            for node in self.chain[index].classdef.body:
                if isinstance(node, ast.FunctionDef) and node.name == name:
                    return node, index
        return None

    def op_names(self) -> List[str]:
        seen: Set[str] = set()
        out: List[str] = []
        for info in self.chain:
            for node in info.classdef.body:
                if (isinstance(node, ast.FunctionDef)
                        and node.name.startswith("op_")
                        and node.name not in seen):
                    seen.add(node.name)
                    out.append(node.name)
        return out


def _resolve_base(expr: ast.expr, ctx: _ModuleCtx
                  ) -> Tuple[str, Optional[ClassInfo]]:
    """Resolve one base-class expression.

    Returns ``(verdict, info)`` where verdict is ``"shared"`` (reached
    SharedObject), ``"stop"`` (object/ABC/...), ``"class"`` (resolved,
    ``info`` set), or ``"unknown"``.
    """
    if isinstance(expr, ast.Name):
        name = expr.id
        if name == "SharedObject":
            return "shared", None
        if name in _STOP_BASES:
            return "stop", None
        local = ctx.classes.get(name)
        if local is not None:
            return "class", ClassInfo(local, ctx)
        binding = ctx.imports.get(name)
        if binding is not None:
            module, attr = binding
            return _lookup_in_module(module, attr or name)
        return "unknown", None
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
        if expr.attr == "SharedObject":
            return "shared", None
        binding = ctx.imports.get(expr.value.id)
        if binding is not None and binding[1] is None:
            return _lookup_in_module(binding[0], expr.attr)
        return "unknown", None
    if isinstance(expr, ast.Subscript):  # Generic[...] style
        return "stop", None
    return "unknown", None


def _lookup_in_module(modname: str,
                      classname: str) -> Tuple[str, Optional[ClassInfo]]:
    if classname == "SharedObject":
        return "shared", None
    if classname in _STOP_BASES:
        return "stop", None
    loaded = _load_module(modname)
    if loaded is None:
        return "unknown", None
    tree, path = loaded
    ctx = _ctx_for(tree, path)
    classdef = ctx.classes.get(classname)
    if classdef is None:
        # Re-exported name: follow one level of import indirection.
        binding = ctx.imports.get(classname)
        if binding is not None:
            return _lookup_in_module(binding[0], binding[1] or classname)
        return "unknown", None
    return "class", ClassInfo(classdef, ctx)


def build_model(classdef: ast.ClassDef, module: ModuleInfo) -> ClassModel:
    """Resolve a class's base chain and effective static attributes."""
    ctx = _ctx_for(module.tree, module.path)
    chain: List[ClassInfo] = []
    seen: Set[Tuple[str, str]] = set()
    state = {"shared": False, "resolved": True}

    def visit(info: ClassInfo) -> None:
        key = (info.ctx.path, info.name)
        if key in seen:
            return
        seen.add(key)
        chain.append(info)
        for base in info.classdef.bases:
            verdict, base_info = _resolve_base(base, info.ctx)
            if verdict == "shared":
                state["shared"] = True
            elif verdict == "class" and base_info is not None:
                visit(base_info)
            elif verdict == "unknown":
                state["resolved"] = False

    visit(ClassInfo(classdef, ctx))
    model = ClassModel(
        chain=chain, is_shared=state["shared"],
        fully_resolved=state["resolved"],
        oracle=_effective_flag(chain, "oracle"),
        readonly=set(), audit_exclude=set())
    model.readonly = _effective_str_set(chain, "READONLY", set())
    model.audit_exclude = _effective_str_set(
        chain, "AUDIT_EXCLUDE", {"name", "ports"})
    return model


def _class_assign(classdef: ast.ClassDef, attr: str) -> Optional[ast.expr]:
    for node in classdef.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == attr:
                    return node.value
        elif (isinstance(node, ast.AnnAssign) and node.value is not None
                and isinstance(node.target, ast.Name)
                and node.target.id == attr):
            return node.value
    return None


def _effective_flag(chain: List[ClassInfo], attr: str) -> bool:
    for info in chain:
        value = _class_assign(info.classdef, attr)
        if isinstance(value, ast.Constant):
            return bool(value.value)
    return False


def _effective_str_set(chain: List[ClassInfo], attr: str,
                       base_default: Set[str]) -> Set[str]:
    def from_index(index: int) -> Set[str]:
        for i in range(index, len(chain)):
            value = _class_assign(chain[i].classdef, attr)
            if value is not None:
                result = _eval_set_expr(value, attr,
                                        lambda: from_index(i + 1))
                # Unresolvable annotation: fall back to the base default
                # (conservatively *small* -- more accesses recorded).
                return result if result is not None else set(base_default)
        return set(base_default)
    return from_index(0)


def _eval_set_expr(expr: ast.expr, attr: str,
                   inherited: Callable[[], Set[str]]) -> Optional[Set[str]]:
    if isinstance(expr, ast.Set):
        values = set()
        for element in expr.elts:
            if not (isinstance(element, ast.Constant)
                    and isinstance(element.value, str)):
                return None
            values.add(element.value)
        return values
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) \
            and expr.func.id in {"frozenset", "set"}:
        if not expr.args:
            return set()
        return _eval_set_expr(expr.args[0], attr, inherited)
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.BitOr):
        left = _eval_set_expr(expr.left, attr, inherited)
        right = _eval_set_expr(expr.right, attr, inherited)
        if left is None or right is None:
            return None
        return left | right
    if isinstance(expr, ast.Attribute) and expr.attr == attr:
        return inherited()
    return None


# ---------------------------------------------------------------------------
# Declared-footprint evaluation
# ---------------------------------------------------------------------------


@dataclass
class Declared:
    """A declared footprint as abstract key paths."""

    reads: Set[Path] = field(default_factory=set)
    writes: Set[Path] = field(default_factory=set)

    def render(self) -> str:
        reads = ", ".join(sorted(render_path(p) for p in self.reads)) or "-"
        writes = ", ".join(sorted(render_path(p)
                                  for p in self.writes)) or "-"
        return f"reads {{{reads}}} writes {{{writes}}}"


class _Super:
    """Marker: the footprint body delegated to super().footprint()."""


_SUPER = _Super()


def declared_footprint(model: ClassModel, op: str) -> Optional[Declared]:
    """Evaluate the effective declared footprint of one operation.

    Follows ``super().footprint(...)`` delegation up the chain; the
    chain ends at SharedObject's conservative default (READONLY methods
    read WHOLE, everything else reads and writes WHOLE).  Returns None
    when the declaration is not statically evaluable.
    """
    method = op[len("op_"):]
    start = 0
    while True:
        found = model.find_method("footprint", start)
        if found is None:
            return _default_declared(model, method)
        fdef, index = found
        result = _eval_footprint_body(fdef, method)
        if result is _SUPER:
            start = index + 1
            continue
        return result


def _default_declared(model: ClassModel, method: str) -> Declared:
    whole = {(WHOLE_KEY,)}
    if method in model.readonly:
        return Declared(reads=set(whole))
    return Declared(reads=set(whole), writes=set(whole))


def _eval_footprint_body(fdef: ast.FunctionDef, method: str):
    """Interpret a footprint() body for one concrete method name."""
    env: Dict[str, Any] = {}

    def eval_key(expr: ast.expr) -> Any:
        if isinstance(expr, ast.Constant):
            return Lit(expr.value)
        if isinstance(expr, ast.Name):
            if expr.id == "pid":
                return PID_KEY
            if expr.id == "WHOLE":
                return WHOLE_KEY
            if expr.id in env:
                return env[expr.id]
            return UNKNOWN_KEY
        if isinstance(expr, ast.Attribute) and expr.attr == "WHOLE":
            return WHOLE_KEY
        if isinstance(expr, ast.Subscript) and \
                isinstance(expr.value, ast.Name) and expr.value.id == "args":
            index = expr.slice
            if isinstance(index, ast.Constant) and \
                    isinstance(index.value, int):
                return Arg(index.value)
            return UNKNOWN_KEY
        if isinstance(expr, ast.Tuple):
            return tuple(eval_key(e) for e in expr.elts)
        if isinstance(expr, ast.IfExp):
            body = eval_key(expr.body)
            orelse = eval_key(expr.orelse)
            return body if body == orelse else UNKNOWN_KEY
        return UNKNOWN_KEY

    def eval_return(expr: ast.expr):
        if not isinstance(expr, ast.Call):
            return None
        func = expr.func
        if isinstance(func, ast.Attribute):
            # super().footprint(...) -> delegate up the chain.
            if (func.attr == "footprint" and isinstance(func.value, ast.Call)
                    and isinstance(func.value.func, ast.Name)
                    and func.value.func.id == "super"):
                return _SUPER
            if (isinstance(func.value, ast.Name)
                    and func.value.id == "Footprint"
                    and func.attr in {"read", "write", "readwrite"}):
                key = (eval_key(expr.args[1]) if len(expr.args) > 1
                       else WHOLE_KEY)
                path = flatten_key(key)
                if func.attr == "read":
                    return Declared(reads={path})
                if func.attr == "write":
                    return Declared(writes={path})
                return Declared(reads={path}, writes={path})
        return None

    def run(body: Sequence[ast.stmt]):
        for stmt in body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                env[stmt.targets[0].id] = eval_key(stmt.value)
            elif isinstance(stmt, ast.Return):
                if stmt.value is None:
                    return None
                return eval_return(stmt.value)
            elif isinstance(stmt, ast.If):
                match = _branch_matches(stmt.test, method)
                if match is True:
                    result = run(stmt.body)
                    if result is not None:
                        return result
                elif match is False:
                    if stmt.orelse:
                        result = run(stmt.orelse)
                        if result is not None:
                            return result
                else:
                    return None  # not statically evaluable
            elif isinstance(stmt, (ast.Expr, ast.Pass, ast.Import,
                                   ast.ImportFrom)):
                continue
            else:
                return None
        return None

    return run(fdef.body)


def _branch_matches(test: ast.expr, method: str) -> Optional[bool]:
    """Does ``test`` select ``method``?

    Recognizes ``method == "lit"`` comparisons, possibly conjoined with
    arity guards (``and args`` / ``and len(args) >= k``), which are
    assumed satisfied -- the runtime always invokes operations with
    their full argument list.  Returns None when no method comparison
    is found (the branch is not statically decidable).
    """
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        verdicts = [_branch_matches(v, method) for v in test.values]
        known = [v for v in verdicts if v is not None]
        if not known:
            return None
        return all(known)
    if isinstance(test, ast.Compare) and len(test.ops) == 1 \
            and isinstance(test.ops[0], ast.Eq) \
            and isinstance(test.left, ast.Name) \
            and test.left.id == "method" \
            and isinstance(test.comparators[0], ast.Constant):
        return test.comparators[0].value == method
    if isinstance(test, ast.Compare) and len(test.ops) == 1 \
            and isinstance(test.ops[0], ast.In) \
            and isinstance(test.left, ast.Name) \
            and test.left.id == "method" \
            and isinstance(test.comparators[0], (ast.Set, ast.Tuple,
                                                 ast.List)):
        values = []
        for element in test.comparators[0].elts:
            if not isinstance(element, ast.Constant):
                return None
            values.append(element.value)
        return method in values
    return None  # arity guards etc.: treated as "assume true" by caller


# ---------------------------------------------------------------------------
# Handler abstract interpretation
# ---------------------------------------------------------------------------


class _SentinelValue:
    __slots__ = ("label",)

    def __init__(self, label: str) -> None:
        self.label = label

    def __repr__(self) -> str:
        return self.label


#: The receiver object itself.
SELF = _SentinelValue("<self>")
#: A default-shaped value (BOTTOM, None, fresh empty containers):
#: storing one is lazy materialization, not a semantic write.
DEFAULTISH = _SentinelValue("<default>")


@dataclass(frozen=True)
class KeyVal:
    """An abstract value usable as a key."""

    key: Any


@dataclass(frozen=True)
class StateRef:
    """A reference into ``self.<attr>`` state, not yet observed.

    Navigation (subscripts, ``.get``) extends the path without recording
    a read; the read is recorded when the referenced value is *consumed*
    (returned, compared, iterated, passed to an opaque call, ...) --
    the same observational semantics the dynamic auditor's
    poison-and-replay pass detects.
    """

    attr: str
    path: Path


@dataclass(frozen=True)
class BoundMethod:
    """``self.<name>`` where name is a method of the class chain."""

    name: str


#: Mapping-style navigation that returns a sub-reference without
#: consuming the container.
_NAV_METHODS = {"get"}
#: Methods that mutate the referenced container in place.
_MUTATOR_METHODS = {"append", "appendleft", "add", "remove", "discard",
                    "pop", "popleft", "popitem", "extend", "update",
                    "insert", "clear", "sort", "reverse", "push",
                    "setdefault"}
#: Methods that observe without mutating (consume the reference).
_READER_METHODS = {"keys", "values", "items", "copy", "count", "index",
                   "__contains__"}

_MAX_INLINE_DEPTH = 6


@dataclass
class Effects:
    reads: Set[Access] = field(default_factory=set)
    writes: Set[Access] = field(default_factory=set)
    #: True when an effect had to degrade to whole-instance access.
    widened: bool = False


def infer_op_effects(model: ClassModel, op: str) -> Optional[Effects]:
    """Abstractly interpret one operation handler of a class chain."""
    found = model.find_method(op)
    if found is None:
        return None
    fdef, index = found
    interp = _AbstractInterp(model)
    interp.run_method(fdef, index, _handler_args(fdef),
                      consume_returns=True)
    return interp.effects


def _handler_args(fdef: ast.FunctionDef) -> List[Any]:
    """Abstract values for an op handler's parameters (after self)."""
    count = len(fdef.args.args) - 1  # drop self
    values: List[Any] = []
    for position in range(count):
        if position == 0:
            values.append(KeyVal(PID_KEY))
        else:
            values.append(KeyVal(Arg(position - 1)))
    return values


def _key_of(value: Any) -> Any:
    if isinstance(value, KeyVal):
        return value.key
    return UNKNOWN_KEY


def _is_default_expr(expr: ast.expr) -> bool:
    """Is this expression default-shaped (⊥, None, fresh containers)?"""
    if isinstance(expr, ast.Constant):
        return True
    if isinstance(expr, ast.Name):
        return expr.id in {"BOTTOM", "None", "MISSING_STATE"}
    if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
        return all(_is_default_expr(e) for e in expr.elts)
    if isinstance(expr, ast.Dict):
        return all(_is_default_expr(e) for e in expr.values
                   if e is not None)
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Mult):
        return (_is_default_expr(expr.left)
                or _is_default_expr(expr.right))
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        return expr.func.id in {"set", "dict", "list", "frozenset",
                                "tuple"} and not expr.args
    return False


def _join_values(a: Any, b: Any) -> Any:
    if a == b:
        return a
    if a is DEFAULTISH and isinstance(b, StateRef):
        return b
    if b is DEFAULTISH and isinstance(a, StateRef):
        return a
    return KeyVal(UNKNOWN_KEY)


class _AbstractInterp:
    """Branch-union abstract interpreter over op handler bodies."""

    def __init__(self, model: ClassModel) -> None:
        self.model = model
        self.effects = Effects()
        self._callstack: List[Tuple[str, int]] = []

    # -- effect recording ----------------------------------------------
    def _read(self, ref: StateRef) -> None:
        self.effects.reads.add(Access(ref.attr, ref.path))

    def _write(self, attr: str, path: Path) -> None:
        self.effects.writes.add(Access(attr, path))

    def _readwrite(self, ref: StateRef) -> None:
        self._read(ref)
        self._write(ref.attr, ref.path)

    def _widen_whole(self) -> None:
        """Unknown effect on self: degrade to whole-instance access."""
        self.effects.widened = True
        self.effects.reads.add(Access("*", ()))
        self.effects.writes.add(Access("*", ()))

    def _consume(self, value: Any) -> None:
        if isinstance(value, StateRef):
            self._read(value)

    # -- method driving ------------------------------------------------
    def run_method(self, fdef: ast.FunctionDef, chain_index: int,
                   args: List[Any], consume_returns: bool = False) -> Any:
        """Interpret one method body; returns the abstract return value.

        ``consume_returns`` marks the top-level handler: its return
        value leaves the object (the scheduler hands it to the process),
        so returned state references count as reads.
        """
        # The recursion guard keys on (name, chain slot), not the bare
        # name: ``super().op_x(...)`` from an overriding ``op_x`` is
        # delegation, not recursion.
        frame = (fdef.name, chain_index)
        if frame in self._callstack or \
                len(self._callstack) >= _MAX_INLINE_DEPTH:
            self._widen_whole()
            return KeyVal(UNKNOWN_KEY)
        self._callstack.append(frame)
        try:
            env: Dict[str, Any] = {"self": SELF}
            params = fdef.args.args[1:]
            for position, param in enumerate(params):
                if position < len(args):
                    env[param.arg] = args[position]
                else:
                    env[param.arg] = KeyVal(UNKNOWN_KEY)
            if fdef.args.vararg is not None:
                env[fdef.args.vararg.arg] = KeyVal(UNKNOWN_KEY)
            returns: List[Any] = []
            self._run_body(fdef.body, env, chain_index, returns)
            if consume_returns:
                for value in returns:
                    self._consume(value)
            if not returns:
                return DEFAULTISH
            result = returns[0]
            for other in returns[1:]:
                result = _join_values(result, other)
            return result
        finally:
            self._callstack.pop()

    def _run_body(self, body: Sequence[ast.stmt], env: Dict[str, Any],
                  chain_index: int, returns: List[Any]) -> None:
        for stmt in body:
            self._run_stmt(stmt, env, chain_index, returns)

    # -- statements ----------------------------------------------------
    def _run_stmt(self, stmt: ast.stmt, env: Dict[str, Any],
                  chain_index: int, returns: List[Any]) -> None:
        ev = lambda node, consume=True: self._eval(  # noqa: E731
            node, env, chain_index, consume)
        if isinstance(stmt, ast.Expr):
            ev(stmt.value)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            if stmt.value is None:
                return
            value = ev(stmt.value, consume=False)
            if _is_default_expr(stmt.value):
                value = DEFAULTISH
            for target in targets:
                self._assign(target, value, stmt.value, env, chain_index)
        elif isinstance(stmt, ast.AugAssign):
            ev(stmt.value)
            target = stmt.target
            if isinstance(target, ast.Attribute):
                base = ev(target.value, consume=False)
                if base is SELF and \
                        target.attr not in self.model.audit_exclude:
                    ref = StateRef(target.attr, ())
                    self._readwrite(ref)
            elif isinstance(target, ast.Subscript):
                base = ev(target.value, consume=False)
                key = _key_of(ev(target.slice, consume=True))
                if isinstance(base, StateRef):
                    self._readwrite(StateRef(
                        base.attr, base.path + flatten_key(key)))
        elif isinstance(stmt, ast.Return):
            # Not consumed here: an inlined callee's return value is
            # observed (or not) at the *call site*; the top-level
            # handler's returns are consumed by infer_op_effects.
            value = (ev(stmt.value, consume=False)
                     if stmt.value is not None else DEFAULTISH)
            returns.append(value)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                ev(stmt.exc)
        elif isinstance(stmt, ast.If):
            ev(stmt.test)
            branch_env = dict(env)
            self._run_body(stmt.body, branch_env, chain_index, returns)
            else_env = dict(env)
            self._run_body(stmt.orelse, else_env, chain_index, returns)
            for name in set(branch_env) | set(else_env):
                left = branch_env.get(name, env.get(name))
                right = else_env.get(name, env.get(name))
                if left is None or right is None:
                    continue
                env[name] = _join_values(left, right)
        elif isinstance(stmt, (ast.While,)):
            ev(stmt.test)
            self._run_body(stmt.body, env, chain_index, returns)
            self._run_body(stmt.orelse, env, chain_index, returns)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            ev(stmt.iter)
            self._bind_names(stmt.target, KeyVal(UNKNOWN_KEY), env)
            self._run_body(stmt.body, env, chain_index, returns)
            self._run_body(stmt.orelse, env, chain_index, returns)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                ev(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_names(item.optional_vars,
                                     KeyVal(UNKNOWN_KEY), env)
            self._run_body(stmt.body, env, chain_index, returns)
        elif isinstance(stmt, ast.Try):
            self._run_body(stmt.body, env, chain_index, returns)
            for handler in stmt.handlers:
                if handler.name:
                    env[handler.name] = KeyVal(UNKNOWN_KEY)
                self._run_body(handler.body, env, chain_index, returns)
            self._run_body(stmt.orelse, env, chain_index, returns)
            self._run_body(stmt.finalbody, env, chain_index, returns)
        elif isinstance(stmt, ast.Assert):
            ev(stmt.test)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Subscript):
                    base = ev(target.value, consume=False)
                    key = _key_of(ev(target.slice))
                    if isinstance(base, StateRef):
                        self._readwrite(StateRef(
                            base.attr, base.path + flatten_key(key)))
        # Pass/Break/Continue/defs/imports: no shared-state effect.

    def _assign(self, target: ast.expr, value: Any, value_node: ast.expr,
                env: Dict[str, Any], chain_index: int) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
            return
        # Storing into object state consumes the stored value.
        if isinstance(target, ast.Attribute):
            base = self._eval(target.value, env, chain_index, False)
            self._consume(value)
            if base is SELF:
                if target.attr not in self.model.audit_exclude:
                    self._write(target.attr, ())
            elif isinstance(base, StateRef):
                self._readwrite(base)
            return
        if isinstance(target, ast.Subscript):
            base = self._eval(target.value, env, chain_index, False)
            key = _key_of(self._eval(target.slice, env, chain_index, True))
            self._consume(value)
            if isinstance(base, StateRef):
                if value is DEFAULTISH or _is_default_expr(value_node):
                    return  # lazy materialization (audit_default idiom)
                self._write(base.attr, base.path + flatten_key(key))
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            self._consume(value)
            for element in target.elts:
                self._assign(element, KeyVal(UNKNOWN_KEY), value_node,
                             env, chain_index)

    def _bind_names(self, target: ast.expr, value: Any,
                    env: Dict[str, Any]) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List, ast.Starred)):
            children = (target.elts if not isinstance(target, ast.Starred)
                        else [target.value])
            for child in children:
                self._bind_names(child, value, env)

    # -- expressions ---------------------------------------------------
    def _eval(self, node: ast.expr, env: Dict[str, Any],
              chain_index: int, consume: bool) -> Any:
        value = self._eval_inner(node, env, chain_index)
        if consume:
            self._consume(value)
        return value

    def _eval_inner(self, node: ast.expr, env: Dict[str, Any],
                    chain_index: int) -> Any:
        ev = lambda n, consume=True: self._eval(  # noqa: E731
            n, env, chain_index, consume)
        if isinstance(node, ast.Constant):
            if node.value is None:
                return DEFAULTISH
            return KeyVal(Lit(node.value))
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            if node.id in {"BOTTOM", "None", "MISSING_STATE"}:
                return DEFAULTISH
            if node.id == "WHOLE":
                return KeyVal(WHOLE_KEY)
            return KeyVal(UNKNOWN_KEY)
        if isinstance(node, ast.Attribute):
            base = ev(node.value, consume=False)
            if base is SELF:
                if self.model.find_method(node.attr) is not None:
                    return BoundMethod(node.attr)
                if node.attr in self.model.audit_exclude:
                    return KeyVal(UNKNOWN_KEY)
                return StateRef(node.attr, ())
            if isinstance(base, StateRef):
                if node.attr in (_NAV_METHODS | _MUTATOR_METHODS
                                 | _READER_METHODS):
                    # Resolved at the enclosing Call; standing alone it
                    # observes the container.
                    return base
                self._read(base)
                return KeyVal(UNKNOWN_KEY)
            return KeyVal(UNKNOWN_KEY)
        if isinstance(node, ast.Subscript):
            base = ev(node.value, consume=False)
            key = _key_of(ev(node.slice))
            if isinstance(base, StateRef):
                return StateRef(base.attr, base.path + flatten_key(key))
            return KeyVal(UNKNOWN_KEY)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env, chain_index)
        if isinstance(node, ast.Compare):
            return self._eval_compare(node, env, chain_index)
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                ev(value)
            return KeyVal(UNKNOWN_KEY)
        if isinstance(node, ast.UnaryOp):
            ev(node.operand)
            return KeyVal(UNKNOWN_KEY)
        if isinstance(node, ast.BinOp):
            ev(node.left)
            ev(node.right)
            return KeyVal(UNKNOWN_KEY)
        if isinstance(node, ast.IfExp):
            ev(node.test)
            return _join_values(ev(node.body, consume=False),
                                ev(node.orelse, consume=False))
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            keys = []
            for element in node.elts:
                value = ev(element)
                keys.append(_key_of(value))
            if isinstance(node, ast.Tuple) and keys and \
                    all(k is not UNKNOWN_KEY for k in keys):
                return KeyVal(tuple(keys))
            return KeyVal(UNKNOWN_KEY)
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    ev(key)
            for value in node.values:
                ev(value)
            return KeyVal(UNKNOWN_KEY)
        if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp,
                             ast.DictComp)):
            for comp in node.generators:
                ev(comp.iter)
                self._bind_names(comp.target, KeyVal(UNKNOWN_KEY), env)
                for cond in comp.ifs:
                    ev(cond)
            if isinstance(node, ast.DictComp):
                ev(node.key)
                ev(node.value)
            else:
                ev(node.elt)
            return KeyVal(UNKNOWN_KEY)
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    ev(value.value)
            return KeyVal(UNKNOWN_KEY)
        if isinstance(node, ast.FormattedValue):
            ev(node.value)
            return KeyVal(UNKNOWN_KEY)
        if isinstance(node, ast.Starred):
            return ev(node.value, consume=False)
        if isinstance(node, ast.Lambda):
            return KeyVal(UNKNOWN_KEY)
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    ev(part)
            return KeyVal(UNKNOWN_KEY)
        return KeyVal(UNKNOWN_KEY)

    def _eval_compare(self, node: ast.Compare, env: Dict[str, Any],
                      chain_index: int) -> Any:
        ev = lambda n, consume=True: self._eval(  # noqa: E731
            n, env, chain_index, consume)
        # "x is None" / "x is not None" is a presence check on a lazily
        # materialized reference, not an observation of shared state
        # (mirrors the auditor's audit_default semantics).
        if len(node.ops) == 1 and isinstance(node.ops[0],
                                             (ast.Is, ast.IsNot)):
            comparand = node.comparators[0]
            if isinstance(comparand, ast.Constant) and \
                    comparand.value is None:
                ev(node.left, consume=False)
                return KeyVal(UNKNOWN_KEY)
        operands = [node.left] + list(node.comparators)
        ops = list(node.ops)
        # Membership: the container is read at the probed key.
        for position, op in enumerate(ops):
            if isinstance(op, (ast.In, ast.NotIn)):
                probe = ev(operands[position])
                container = ev(operands[position + 1], consume=False)
                if isinstance(container, StateRef):
                    self._read(StateRef(
                        container.attr,
                        container.path + flatten_key(_key_of(probe))))
                operands[position] = None
                operands[position + 1] = None
        for operand in operands:
            if operand is not None:
                ev(operand)
        return KeyVal(UNKNOWN_KEY)

    def _eval_call(self, node: ast.Call, env: Dict[str, Any],
                   chain_index: int) -> Any:
        ev = lambda n, consume=True: self._eval(  # noqa: E731
            n, env, chain_index, consume)
        func = node.func

        def eval_args() -> List[Any]:
            values = [ev(arg, consume=False) for arg in node.args]
            for kw in node.keywords:
                ev(kw.value, consume=False)
            return values

        def consume_args() -> None:
            for arg in node.args:
                ev(arg)
            for kw in node.keywords:
                ev(kw.value)

        # super().method(...) -> inline starting past the current class.
        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Call) and \
                isinstance(func.value.func, ast.Name) and \
                func.value.func.id == "super":
            found = self.model.find_method(func.attr, chain_index + 1)
            if found is None:
                self._widen_whole()
                consume_args()
                return KeyVal(UNKNOWN_KEY)
            fdef, index = found
            return self.run_method(fdef, index, eval_args())

        if isinstance(func, ast.Attribute):
            base = ev(func.value, consume=False)
            if base is SELF:
                found = self.model.find_method(func.attr)
                if found is None:
                    # Unknown self-method: unknown effect on the object.
                    self._widen_whole()
                    consume_args()
                    return KeyVal(UNKNOWN_KEY)
                fdef, index = found
                return self.run_method(fdef, index, eval_args())
            if isinstance(base, StateRef):
                return self._eval_ref_method(base, func.attr, node, env,
                                             chain_index)
            consume_args()
            return KeyVal(UNKNOWN_KEY)

        # Plain calls (builtins, constructors, exceptions): arguments
        # are observed; no self-state effect.
        if isinstance(func, ast.Name) and func.id == "isinstance":
            for arg in node.args:
                ev(arg, consume=False)
            return KeyVal(UNKNOWN_KEY)
        consume_args()
        return KeyVal(UNKNOWN_KEY)

    def _eval_ref_method(self, ref: StateRef, method: str, node: ast.Call,
                         env: Dict[str, Any], chain_index: int) -> Any:
        ev = lambda n, consume=True: self._eval(  # noqa: E731
            n, env, chain_index, consume)
        if method == "get":
            key = _key_of(ev(node.args[0])) if node.args else UNKNOWN_KEY
            default = (ev(node.args[1], consume=False)
                       if len(node.args) > 1 else DEFAULTISH)
            sub = StateRef(ref.attr, ref.path + flatten_key(key))
            if default is DEFAULTISH or isinstance(default, StateRef):
                return _join_values(sub, default) if \
                    isinstance(default, StateRef) else sub
            return sub
        if method == "setdefault":
            key = _key_of(ev(node.args[0])) if node.args else UNKNOWN_KEY
            sub = StateRef(ref.attr, ref.path + flatten_key(key))
            default_node = node.args[1] if len(node.args) > 1 else None
            if default_node is not None and \
                    not _is_default_expr(default_node):
                ev(default_node)
                self._read(sub)
                self._write(sub.attr, sub.path)
            return sub
        if method in _MUTATOR_METHODS:
            for arg in node.args:
                ev(arg)
            self._readwrite(ref)
            return KeyVal(UNKNOWN_KEY)
        if method in _READER_METHODS:
            for arg in node.args:
                ev(arg)
            self._read(ref)
            return KeyVal(UNKNOWN_KEY)
        # Unknown method on a state reference: conservative read+write.
        for arg in node.args:
            ev(arg)
        self._readwrite(ref)
        return KeyVal(UNKNOWN_KEY)


# ---------------------------------------------------------------------------
# Per-class analysis entry point
# ---------------------------------------------------------------------------


@dataclass
class OpCheck:
    """The inferred-vs-declared comparison for one operation."""

    op: str
    fdef: ast.FunctionDef
    defined_here: bool              # op defined in the linted module
    declared: Optional[Declared]    # None: not statically evaluable
    effects: Optional[Effects]
    uncovered_reads: List[Access] = field(default_factory=list)
    uncovered_writes: List[Access] = field(default_factory=list)


@dataclass
class ClassAnalysis:
    classdef: ast.ClassDef
    model: ClassModel
    checks: List[OpCheck] = field(default_factory=list)


def analyze_module_classes(module: ModuleInfo) -> List[ClassAnalysis]:
    """Run footprint inference over every shared-object class that the
    module itself defines or refines (own ``op_*``, ``footprint`` or
    ``READONLY``); oracle objects (failure detectors) are exempt, like
    in the dynamic auditor."""
    analyses: List[ClassAnalysis] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not _defines_footprint_surface(node):
            continue
        model = build_model(node, module)
        if not model.is_shared or model.oracle:
            continue
        analysis = ClassAnalysis(classdef=node, model=model)
        for op in model.op_names():
            found = model.find_method(op)
            if found is None:
                continue
            fdef, index = found
            declared = declared_footprint(model, op)
            check = OpCheck(
                op=op, fdef=fdef,
                defined_here=(model.chain[index].ctx.path == module.path),
                declared=declared, effects=None)
            if declared is not None:
                effects = infer_op_effects(model, op)
                check.effects = effects
                if effects is not None:
                    declared_read = declared.reads
                    declared_write = declared.writes
                    check.uncovered_reads = sorted(
                        (a for a in effects.reads
                         if not path_covered(a.path, declared_read)),
                        key=lambda a: (a.attr, repr(a.path)))
                    check.uncovered_writes = sorted(
                        (a for a in effects.writes
                         if not path_covered(a.path, declared_write)),
                        key=lambda a: (a.attr, repr(a.path)))
            analysis.checks.append(check)
        analyses.append(analysis)
    return analyses


def _defines_footprint_surface(classdef: ast.ClassDef) -> bool:
    for node in classdef.body:
        if isinstance(node, ast.FunctionDef) and (
                node.name.startswith("op_") or node.name == "footprint"):
            return True
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and \
                        target.id == "READONLY":
                    return True
    return False
