"""The x_compete() operation (paper Figure 5).

Dynamically elects the owners of an x-safe-agreement object: at most x
invokers obtain True, and if at most x simulators invoke it, every correct
invoker obtains True.  Implemented from an array ``TS[1..x]`` of one-shot
test&set objects: scan the array, stopping at the first object won.
"""

from __future__ import annotations

from typing import Generator, Hashable

from ..runtime.ops import ObjectProxy


def x_compete(tas_family: ObjectProxy, key: Hashable, x: int,
              sim_id: int) -> Generator:
    """``winner = yield from x_compete(ts, key, x, i)``.

    ``tas_family`` is a :class:`~repro.memory.families.TASFamily` proxy;
    slot ``ell`` of the instance is the family key ``(key, ell)``.

    Properties (proved as part of Theorem 2):
    * at most x invokers return True (x objects, one winner each);
    * a process that returns False saw x losses, so x distinct winners
      exist -- hence if <= x processes invoke, no correct one loses.
    """
    if x < 1:
        raise ValueError("x must be >= 1")
    # (01)-(04): scan TS[0..x-1] until a win or the array is exhausted.
    for ell in range(x):
        winner = yield tas_family.test_and_set((key, ell))
        if winner:
            return True
    return False
