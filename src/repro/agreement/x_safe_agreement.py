"""The x-safe-agreement object type (paper Section 4.2, Figure 6).

The core novelty of the reverse simulation.  Compared with safe-agreement:

* Termination is weakened/strengthened to: if at most (x-1) processes crash
  while executing ``x_sa_propose()``, every correct ``x_sa_decide()``
  returns.  Killing one object therefore costs the adversary x crashes, so
  t' simulator crashes can block at most ⌊t'/x⌋ simulated processes
  (Lemma 7) -- the multiplicative phenomenon itself.
* Ownership is *dynamic*: the first (at most) x invokers win the
  ``X_T&S`` competition (Figure 5) and become the object's owners.  Owners
  cooperate through the statically-ported consensus objects
  ``XCONS[1..m]``: scanning the fixed list ``SET_LIST[1..m]`` of size-x
  subsets of simulators and proposing to every object whose port set
  contains them.  Whatever the actual owner set S is, there is an ``ell``
  with S ⊆ SET_LIST[ell]; from that object on, all owners carry the same
  value, which the first finisher publishes in the register ``X_SAFE_AG``.

Shared state per instance (all keyed by the instance key in families):

* ``X_T&S``  -> TASFamily keys ``(key, 0..x-1)``
* ``XCONS``  -> XConsFamily keys ``(key, ell)`` with ports SET_LIST[ell]
* ``X_SAFE_AG`` -> RegisterFamily key ``key``
"""

from __future__ import annotations

from itertools import combinations
from typing import Any, Generator, Hashable, List, Sequence, Tuple

from ..memory.base import BOTTOM
from ..memory.families import RegisterFamily, TASFamily, XConsFamily
from ..runtime.ops import ObjectProxy, wait_until
from .base import AgreementFactory, AgreementInstance
from .x_compete import x_compete


def set_list(n_simulators: int, x: int) -> List[Tuple[int, ...]]:
    """The paper's SET_LIST[1..m]: all size-x subsets of simulator ids, in
    a deterministic (lexicographic) order that every simulator scans
    identically.  m = C(n_simulators, x)."""
    if not 1 <= x <= n_simulators:
        raise ValueError(
            f"need 1 <= x <= n_simulators, got x={x}, n={n_simulators}")
    return list(combinations(range(n_simulators), x))


class XSafeAgreementInstance(AgreementInstance):
    """View of one x-safe-agreement object."""

    def __init__(self, key: Hashable, x: int,
                 subsets: Sequence[Tuple[int, ...]],
                 tas_name: str, xcons_name: str, reg_name: str) -> None:
        super().__init__(key)
        self.x = x
        self.subsets = subsets
        self.tas = ObjectProxy(tas_name)
        self.xcons = ObjectProxy(xcons_name)
        self.reg = ObjectProxy(reg_name)

    def propose(self, sim_id: int, value: Any) -> Generator:
        # (01) compete for ownership.
        owner = yield from x_compete(self.tas, self.key, self.x, sim_id)
        if not owner:
            # At least x simulators invoked propose; x owners exist.
            return
        # (03)-(06) scan SET_LIST, funneling through every consensus object
        # whose port set contains us.
        res = value
        for ell, subset in enumerate(self.subsets):
            if sim_id in subset:
                res = yield self.xcons.propose(self.key, ell, res)
        # (07) publish the decided value.
        yield self.reg.write(self.key, res)

    def activity_probe(self):
        """Read-only (invocation, predicate) pair that fires once any
        simulator has started proposing on this instance (every propose
        begins by competing on TS slot 0).  Used by the translator's
        busy-wait protocol (see repro.bg.translate)."""
        return (self.tas.peek((self.key, 0)),
                lambda winner: winner is not None)

    def decide(self, sim_id: int) -> Generator:
        # (09)-(10) wait until X_SAFE_AG is written, then return it.
        value = yield from wait_until(
            lambda: self.reg.read(self.key),
            lambda v: v is not BOTTOM)
        return value


class XSafeAgreementFactory(AgreementFactory):
    """Factory of x-safe-agreement views over one (TAS, XCons, Register)
    family triple shared by all instances."""

    def __init__(self, n_simulators: int, x: int,
                 prefix: str = "XSA") -> None:
        if x < 1:
            raise ValueError("x must be >= 1")
        self.n_simulators = n_simulators
        self.x = x
        self.subsets = set_list(n_simulators, x)
        self.tas_name = f"{prefix}_TS"
        self.xcons_name = f"{prefix}_XCONS"
        self.reg_name = f"{prefix}_REG"

    @property
    def m(self) -> int:
        return len(self.subsets)

    def instance(self, key: Hashable) -> XSafeAgreementInstance:
        return XSafeAgreementInstance(
            key, self.x, self.subsets,
            self.tas_name, self.xcons_name, self.reg_name)

    def shared_objects(self) -> List:
        return [
            TASFamily(self.tas_name),
            XConsFamily(self.xcons_name, self.subsets),
            RegisterFamily(self.reg_name),
        ]

    def object_specs(self) -> List:
        from ..memory.specs import make_spec
        return [
            make_spec("tas_family", self.tas_name),
            make_spec("xcons_family", self.xcons_name,
                      subsets=tuple(self.subsets)),
            make_spec("register_family", self.reg_name),
        ]
