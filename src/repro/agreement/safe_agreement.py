"""The safe-agreement object type (paper Figure 1, from [BGLR 2001]).

Built from a snapshot object ``SM`` with one entry per simulator, each entry
a (value, level) pair with level 0 = meaningless, 1 = unstable, 2 = stable:

* ``sa_propose(v)``: write (v, 1); snapshot; if some entry is stable, cancel
  own value (level 0) else make it stable (level 2).
* ``sa_decide()``: snapshot until no entry is unstable; return the stable
  value of the smallest simulator id.

Termination of ``sa_decide`` holds provided no simulator crashes *between*
its level-1 write and its level-0/2 overwrite -- the window the BG
simulation protects with mutex1 so that one simulator crash can block at
most one simulated process (paper, Section 3.2.3).
"""

from __future__ import annotations

from typing import Any, Generator, Hashable, List, Tuple

from ..memory.base import BOTTOM
from ..memory.families import SnapshotFamily
from ..runtime.ops import ObjectProxy, wait_until
from .base import AgreementFactory, AgreementInstance

#: Entry levels (paper, Section 3.1).
MEANINGLESS, UNSTABLE, STABLE = 0, 1, 2


def _level(entry: Any) -> int:
    return MEANINGLESS if entry is BOTTOM else entry[1]


def _no_unstable(snap: Tuple[Any, ...]) -> bool:
    return all(_level(e) != UNSTABLE for e in snap)


class SafeAgreementInstance(AgreementInstance):
    """View of one safe-agreement object stored in a SnapshotFamily."""

    def __init__(self, family_name: str, key: Hashable,
                 n_simulators: int) -> None:
        super().__init__(key)
        self.sm = ObjectProxy(family_name)
        self.n = n_simulators

    def propose(self, sim_id: int, value: Any) -> Generator:
        # (01) SM[i] <- (v, 1)
        yield self.sm.write(self.key, sim_id, (value, UNSTABLE))
        # (02) sm_i <- SM.snapshot()
        snap = yield self.sm.snapshot(self.key)
        # (03) stable elsewhere? cancel : stabilize
        if any(_level(e) == STABLE for e in snap):
            yield self.sm.write(self.key, sim_id, (value, MEANINGLESS))
        else:
            yield self.sm.write(self.key, sim_id, (value, STABLE))

    def activity_probe(self):
        """Read-only (invocation, predicate) pair that fires once any
        simulator has started proposing on this instance.  Used by the
        translator's busy-wait protocol (see repro.bg.translate)."""
        return (self.sm.snapshot(self.key),
                lambda snap: any(e is not BOTTOM for e in snap))

    def decide(self, sim_id: int) -> Generator:
        # (04) repeat snapshot until no unstable entry
        snap = yield from wait_until(
            lambda: self.sm.snapshot(self.key), _no_unstable)
        # (05) smallest id with a stable value
        for entry in snap:
            if _level(entry) == STABLE:
                return entry[0]
        raise AssertionError(
            f"safe_agreement[{self.key!r}]: decide invoked before propose "
            f"completed (no stable entry)")


class SafeAgreementFactory(AgreementFactory):
    """Factory of safe-agreement views over one SnapshotFamily."""

    def __init__(self, n_simulators: int,
                 family_name: str = "SAFE_AG") -> None:
        self.n_simulators = n_simulators
        self.family_name = family_name

    def instance(self, key: Hashable) -> SafeAgreementInstance:
        return SafeAgreementInstance(self.family_name, key,
                                     self.n_simulators)

    def shared_objects(self) -> List:
        return [SnapshotFamily(self.family_name, self.n_simulators)]

    def object_specs(self) -> List:
        from ..memory.specs import make_spec
        return [make_spec("snapshot_family", self.family_name,
                          size=self.n_simulators)]
