"""Agreement object types of the paper: safe-agreement (Figure 1),
x_compete (Figure 5) and x-safe-agreement (Figure 6)."""

from .adopt_commit import ADOPT, COMMIT, AdoptCommit, adopt_commit_specs
from .base import AgreementFactory, AgreementInstance
from .safe_agreement import (MEANINGLESS, STABLE, UNSTABLE,
                             SafeAgreementFactory, SafeAgreementInstance)
from .x_compete import x_compete
from .x_safe_agreement import (XSafeAgreementFactory,
                               XSafeAgreementInstance, set_list)

__all__ = [
    "ADOPT", "COMMIT", "AdoptCommit", "adopt_commit_specs",
    "AgreementFactory", "AgreementInstance",
    "MEANINGLESS", "STABLE", "UNSTABLE",
    "SafeAgreementFactory", "SafeAgreementInstance",
    "x_compete",
    "XSafeAgreementFactory", "XSafeAgreementInstance", "set_list",
]
