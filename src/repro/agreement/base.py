"""Common interface of the agreement object types used by the simulations.

Both the BG safe-agreement (Figure 1) and the paper's new x-safe-agreement
(Figure 6) are one-shot objects offering ``propose`` then ``decide``, with:

* Termination -- conditional on how many participants crash mid-propose
  (one crash kills a safe-agreement; x crashes of *owners* are needed to
  kill an x-safe-agreement),
* Agreement -- at most one value is decided,
* Validity -- a decided value is a proposed value.

Protocol instances are *views*: the state lives in family objects of the
shared store, keyed by the instance key, so any number of simulators can
construct a view of the same logical object.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Generator, Hashable


class AgreementInstance(ABC):
    """View of one one-shot agreement object in the shared store."""

    def __init__(self, key: Hashable) -> None:
        self.key = key

    @abstractmethod
    def propose(self, sim_id: int, value: Any) -> Generator:
        """Generator: propose ``value`` on behalf of simulator ``sim_id``.

        Must be invoked at most once per simulator, before ``decide``.
        Yields target-model operations; returns None.
        """

    @abstractmethod
    def decide(self, sim_id: int) -> Generator:
        """Generator: return the decided value (may busy-wait)."""


class AgreementFactory(ABC):
    """Creates agreement instance views and declares the shared objects they
    need, so a simulation algorithm can list them in its object specs."""

    @abstractmethod
    def instance(self, key: Hashable) -> AgreementInstance:
        """View of the agreement object named ``key``."""

    @abstractmethod
    def shared_objects(self) -> list:
        """Fresh shared objects backing all instances (one set per run)."""
