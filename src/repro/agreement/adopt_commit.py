"""Adopt-commit objects (Gafni 1998).

The wait-free read/write building block of indulgent consensus: every
invoker proposes a value and obtains (COMMIT, v) or (ADOPT, v) with

* Validity     -- the output value was proposed;
* Convergence  -- if all proposals equal v, every output is (COMMIT, v);
* Coherence    -- if any output is (COMMIT, v), every output's value is v;
* Termination  -- wait-free.

Implementation: the classic two-phase construction over two snapshot
objects.  Phase 1 publishes the proposal and checks unanimity; phase 2
publishes the phase-1 verdict and commits only if nobody disagreed.

Instances live in two snapshot families keyed by the instance key, so
round-based algorithms get one fresh object per round for free.
"""

from __future__ import annotations

from typing import Any, Generator, Hashable, List, Tuple

from ..memory.base import BOTTOM
from ..memory.families import SnapshotFamily
from ..runtime.ops import ObjectProxy

#: Outcome tags.
COMMIT = "commit"
ADOPT = "adopt"


class AdoptCommit:
    """View of one adopt-commit object (state in two snapshot families)."""

    def __init__(self, key: Hashable, n: int,
                 phase1_name: str = "AC1",
                 phase2_name: str = "AC2") -> None:
        self.key = key
        self.n = n
        self.a = ObjectProxy(phase1_name)
        self.b = ObjectProxy(phase2_name)

    def propose(self, pid: int, value: Any) -> Generator:
        """``(outcome, value) = yield from ac.propose(pid, v)``."""
        # Phase 1: publish, then check unanimity among published values.
        yield self.a.write(self.key, pid, value)
        seen = yield self.a.snapshot(self.key)
        values = {repr(e): e for e in seen if e is not BOTTOM}
        if len(values) == 1:
            verdict: Tuple[str, Any] = (COMMIT, value)
        else:
            verdict = (ADOPT, value)
        # Phase 2: publish the verdict; commit only without dissent.
        yield self.b.write(self.key, pid, verdict)
        verdicts = [e for e in (yield self.b.snapshot(self.key))
                    if e is not BOTTOM]
        committed = [v for tag, v in verdicts if tag == COMMIT]
        if committed and all(tag == COMMIT for tag, _ in verdicts):
            return (COMMIT, committed[0])
        if committed:
            return (ADOPT, committed[0])
        return (ADOPT, value)


def adopt_commit_specs(n: int, phase1_name: str = "AC1",
                       phase2_name: str = "AC2") -> List:
    """Object specs backing all AdoptCommit instances of a run."""
    from ..memory.specs import make_spec
    return [make_spec("snapshot_family", phase1_name, size=n),
            make_spec("snapshot_family", phase2_name, size=n)]
