"""Colored tasks: renaming and distinct-slot allocation.

"A colored task requires that no two processes decide the value of the
same simulated process" / "no two processes are permitted to decide the
same new name" (paper Sections 5.1, 6).  These specifications drive the
Section 5.5 colored-simulation tests: distinctness is the property the
T&S decision allocation must preserve.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from .task import Task


class RenamingTask(Task):
    """M-renaming: decided names are distinct values in {0..M-1}.

    With M = n this is *strong* (tight) renaming, solvable from test&set;
    the classic read/write bound is M = 2n - 1 (Attiya et al. 1990).
    """

    colorless = False

    def __init__(self, n: int, namespace: int = None) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        self.n = n
        self.namespace = n if namespace is None else namespace
        if self.namespace < n:
            raise ValueError("namespace must hold at least n names")
        self.name = f"renaming({self.namespace})"

    def check_outputs(self, inputs: Sequence[Any],
                      outputs: Dict[int, Any]) -> List[str]:
        violations: List[str] = []
        seen: Dict[Any, int] = {}
        for pid, value in sorted(outputs.items()):
            if not isinstance(value, int) or not 0 <= value < self.namespace:
                violations.append(
                    f"p{pid} decided {value!r}, outside 0..{self.namespace - 1}")
            if value in seen:
                violations.append(
                    f"distinctness: p{pid} and p{seen[value]} both decided "
                    f"{value!r}")
            else:
                seen[value] = pid
        return violations


class DistinctValuesTask(Task):
    """The bare colored core: all decided values distinct (any domain)."""

    colorless = False
    name = "distinct-values"

    def check_outputs(self, inputs: Sequence[Any],
                      outputs: Dict[int, Any]) -> List[str]:
        violations: List[str] = []
        seen: Dict[Any, int] = {}
        for pid, value in sorted(outputs.items()):
            if value in seen:
                violations.append(
                    f"distinctness: p{pid} and p{seen[value]} both decided "
                    f"{value!r}")
            else:
                seen[value] = pid
        return violations
