"""Decision-task formalism: colorless/colored tasks and run validation."""

from .immediate_snapshot import KImmediateSnapshotTask, OneShotSnapshotTask
from .kset_task import ConsensusTask, KSetAgreementTask
from .renaming import DistinctValuesTask, RenamingTask
from .task import Task, TaskVerdict

__all__ = [
    "ConsensusTask", "KSetAgreementTask",
    "DistinctValuesTask", "RenamingTask",
    "KImmediateSnapshotTask", "OneShotSnapshotTask",
    "Task", "TaskVerdict",
]
