"""Immediate-snapshot task variants (t-resilient k-IS, PAPERS.md).

The *one-shot snapshot* task: each process writes its input and decides
a **view** -- a set of ``(pid, value)`` pairs -- subject to

* **self-inclusion**: a process's own pair is in its view;
* **containment**: any two views are ordered by inclusion.

The *k-immediate-snapshot* refinement (from the "t-Resilient
k-Immediate Snapshot" line of work tracked in PAPERS.md) additionally
requires every view to carry at least ``n - k`` pairs.  Full immediacy
(``p in view_q and q in view_p  =>  view_p == view_q``) is a property
of *immediate*-snapshot protocols, not of atomic snapshots; it is
checked only when ``immediacy=True`` is requested, so the task can
grade both protocol families.

These specifications feed the generative sweep
(:mod:`repro.generative`): the write-then-snapshot protocol satisfies
self-inclusion + containment in *every* run, while the ``n - k`` size
bound holds in every crash-free run **iff** ``k >= n - 1`` (the first
process to snapshot may have seen only its own write) -- an executable
two-sided prediction the solvability oracle cross-checks against
exhaustive exploration.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from .task import Task

#: A decided view: a tuple of (pid, value) pairs, sorted by pid.
View = Tuple[Tuple[int, Any], ...]


def _as_pairs(view: Any) -> List[Tuple[int, Any]]:
    """Coerce a decided view into a list of (pid, value) pairs."""
    try:
        return [(int(pid), value) for pid, value in view]
    except (TypeError, ValueError):
        return []


class OneShotSnapshotTask(Task):
    """Self-inclusion + containment over decided views (colored)."""

    colorless = False

    def __init__(self, n: int, immediacy: bool = False) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        self.n = n
        self.immediacy = immediacy
        self.name = f"one-shot-snapshot({n})"

    def check_outputs(self, inputs: Sequence[Any],
                      outputs: Dict[int, Any]) -> List[str]:
        """Violations of self-inclusion / containment (/ immediacy)."""
        violations: List[str] = []
        views: Dict[int, Dict[int, Any]] = {}
        for pid, decided in sorted(outputs.items()):
            pairs = _as_pairs(decided)
            if not pairs:
                violations.append(
                    f"p{pid} decided {decided!r}, not a non-empty view "
                    f"of (pid, value) pairs")
                continue
            views[pid] = dict(pairs)
            if pid not in views[pid]:
                violations.append(
                    f"self-inclusion: p{pid}'s view {sorted(views[pid])} "
                    f"misses its own pair")
        pids = sorted(views)
        for i, p in enumerate(pids):
            for q in pids[i + 1:]:
                sp, sq = set(views[p].items()), set(views[q].items())
                if not (sp <= sq or sq <= sp):
                    violations.append(
                        f"containment: views of p{p} and p{q} are "
                        f"incomparable")
                elif (self.immediacy and p in views[q] and q in views[p]
                        and sp != sq):
                    violations.append(
                        f"immediacy: p{p} and p{q} see each other but "
                        f"their views differ")
        return violations


class KImmediateSnapshotTask(OneShotSnapshotTask):
    """One-shot snapshot plus the k-IS view-size bound ``>= n - k``."""

    def __init__(self, n: int, k: int, immediacy: bool = False) -> None:
        super().__init__(n, immediacy=immediacy)
        if not 0 <= k <= n:
            raise ValueError(f"need 0 <= k <= n, got k={k}, n={n}")
        self.k = k
        self.name = f"{k}-immediate-snapshot({n})"

    def check_outputs(self, inputs: Sequence[Any],
                      outputs: Dict[int, Any]) -> List[str]:
        """One-shot violations plus any view smaller than ``n - k``."""
        violations = super().check_outputs(inputs, outputs)
        floor = self.n - self.k
        for pid, decided in sorted(outputs.items()):
            pairs = _as_pairs(decided)
            if pairs and len(pairs) < floor:
                violations.append(
                    f"k-view: p{pid}'s view has {len(pairs)} pairs, "
                    f"the {self.k}-IS bound requires >= {floor}")
        return violations
