"""k-set agreement and consensus task specifications.

k-set agreement (Chaudhuri 1993): every correct process decides a proposed
value; at most k distinct values are decided.  Consensus is the k = 1
instance.  Both are colorless (paper Section 2.1) and carry a *set
consensus number* equal to k, which drives their solvability across the
ASM models: solvable in ASM(n, t, x) iff k > ⌊t/x⌋.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from .task import Task


class KSetAgreementTask(Task):
    """The k-set agreement decision task."""

    colorless = True

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.name = f"{k}-set-agreement"

    @property
    def set_consensus_number(self) -> int:
        """k-set agreement has set consensus number k (Gafni-Kuznetsov)."""
        return self.k

    def check_outputs(self, inputs: Sequence[Any],
                      outputs: Dict[int, Any]) -> List[str]:
        violations: List[str] = []
        proposed = set(inputs)
        for pid, value in sorted(outputs.items()):
            if value not in proposed:
                violations.append(
                    f"validity: p{pid} decided {value!r}, not proposed")
        distinct = set(outputs.values())
        if len(distinct) > self.k:
            violations.append(
                f"agreement: {len(distinct)} distinct decisions "
                f"{sorted(map(repr, distinct))}, allowed {self.k}")
        return violations


class ConsensusTask(KSetAgreementTask):
    """Consensus: 1-set agreement."""

    def __init__(self) -> None:
        super().__init__(1)
        self.name = "consensus"
