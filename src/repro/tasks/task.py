"""Decision tasks (paper Section 2.1).

A decision task is a total binary relation Δ from input vectors I to output
vectors O.  A task is *colorless* when any proposed value may be proposed
by any process and any decided value may be decided by any process; it is
*colored* otherwise (e.g. renaming).

An algorithm solves a task in a t-resilient environment when, for every
allowed input vector, every correct process decides and the (partial)
output vector extends to some O with (I, O) ∈ Δ (Section 2.2).  The
:class:`TaskVerdict` produced by ``validate_run`` captures exactly this.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Set

from ..runtime.run import RunResult


@dataclass
class TaskVerdict:
    """Outcome of checking a run against a task specification."""

    ok: bool
    violations: List[str] = field(default_factory=list)
    #: Correct processes that failed to decide (liveness violations are
    #: reported separately from safety so the bound-demonstrating tests
    #: can require exactly one of them).
    undecided_correct: Set[int] = field(default_factory=set)

    def __bool__(self) -> bool:
        return self.ok

    def explain(self) -> str:
        if self.ok:
            return "ok"
        return "; ".join(self.violations)


class Task(ABC):
    """A decision task specification."""

    name: str = "task"
    colorless: bool = True

    @abstractmethod
    def check_outputs(self, inputs: Sequence[Any],
                      outputs: Dict[int, Any]) -> List[str]:
        """Safety check: violations of Δ by the partial output vector
        ``outputs`` (pid -> decided value) on input vector ``inputs``.
        Returns a list of violation descriptions (empty = safe)."""

    def input_ok(self, inputs: Sequence[Any]) -> bool:
        """Is the input vector allowed (I ∈ I)?  Default: any vector."""
        return True

    # ------------------------------------------------------------------
    def validate_run(self, inputs: Sequence[Any],
                     result: RunResult,
                     require_liveness: bool = True) -> TaskVerdict:
        """Check a run: safety always, liveness (every correct process
        decided) unless ``require_liveness`` is False."""
        violations = list(self.check_outputs(inputs, result.decisions))
        undecided = result.correct_pids - result.decided_pids
        if require_liveness and undecided:
            violations.append(
                f"correct processes did not decide: {sorted(undecided)}")
        return TaskVerdict(ok=not violations, violations=violations,
                           undecided_correct=undecided)

    def __repr__(self) -> str:
        kind = "colorless" if self.colorless else "colored"
        return f"<{kind} task {self.name!r}>"
