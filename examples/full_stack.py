#!/usr/bin/env python3
"""The full stack under the paper: from raw messages to decision tasks.

ASM(n, t, x) presumes atomic registers.  This demo builds the whole
tower at once and runs the paper's canonical task on top:

    asynchronous messages          (repro.messaging.engine)
      --ABD quorum protocol-->     atomic SWMR registers   (t < n/2)
      --Afek et al. 1993-->        atomic snapshots
      --write/snapshot-until-->    2-set agreement, 1-resilient

Every layer is adversarial: delivery order is seeded-random, one machine
crashes mid-protocol, and the algorithm on top never notices -- it sees
ordinary crash-prone shared memory.

Run:  python examples/full_stack.py
"""

from repro.memory import BOTTOM
from repro.memory.afek_snapshot import AfekSnapshot
from repro.messaging import MessageCrash
from repro.messaging.hosted import host_program_run


def kset_over_registers(n, t, pid, value):
    """2-set agreement written purely against registers (via Afek)."""
    view = AfekSnapshot("R", n)
    yield from view.update(pid, value)
    while True:
        snap = yield from view.snapshot(pid)
        seen = [e for e in snap if e is not BOTTOM]
        if len(seen) >= n - t:
            return min(seen)


def main() -> None:
    n, t = 4, 1
    inputs = [40, 10, 30, 20]
    print("stack: messages -> ABD registers -> Afek snapshots -> "
          "2-set agreement")
    print(f"n = {n}, t = {t} (ABD quorum = {n - t}), "
          f"inputs = {inputs}")
    print()

    for label, crashes, seed in [
        ("clean network            ", [], 3),
        ("machine 2 crashes early  ",
         [MessageCrash(2, after_events=5)], 7),
        ("adversarial reordering   ", [], 42),
    ]:
        res = host_program_run(
            n, t,
            {pid: kset_over_registers(n, t, pid, inputs[pid])
             for pid in range(n)},
            crashes=crashes, seed=seed)
        decisions = dict(sorted(res.decisions.items()))
        distinct = set(decisions.values())
        assert len(distinct) <= t + 1 and distinct <= set(inputs)
        print(f"  {label} deliveries={res.delivered:>5}  "
              f"decisions={decisions}")

    print()
    print("two network crashes (> t) kill the register quorum -- and "
          "with it the task:")
    res = host_program_run(
        n, t,
        {pid: kset_over_registers(n, t, pid, inputs[pid])
         for pid in range(n)},
        crashes=[MessageCrash(2, after_events=0),
                 MessageCrash(3, after_events=0)],
        max_events=20_000)
    print(f"  survivors decided: {sorted(res.decisions) or 'nobody'} "
          f"(registers exist exactly while majorities survive)")


if __name__ == "__main__":
    main()
