#!/usr/bin/env python3
"""Quickstart: the multiplicative power of consensus numbers in 60 lines.

We take the classic t-resilient k-set agreement algorithm for the plain
read/write model, ASM(n, t, 1), and -- via the paper's Section 4
simulation -- run it in ASM(n, t', x), where it survives t' = t*x + (x-1)
crashes: consensus-number-x objects multiply the tolerable failures by x.

Run:  python examples/quickstart.py
"""

from repro import (ASM, CrashPlan, KSetAgreementTask, KSetReadWrite,
                   SeededRandomAdversary, run_algorithm,
                   simulate_with_xcons)

N, T, X = 6, 1, 3
T_PRIME = T * X + (X - 1)          # = 5: the top of the multiplicative band


def main() -> None:
    # 1. A 1-resilient 2-set agreement algorithm for the read/write model.
    source = KSetReadWrite(n=N, t=T, k=T + 1)
    print(f"source      : {source.name}  designed for {source.model()}")

    # 2. Lift it into ASM(6, 5, 3) with the Section 4 simulation: the
    #    simulators cooperate through x-safe-agreement objects built from
    #    consensus-number-3 objects and test&set.
    lifted = simulate_with_xcons(source, t_prime=T_PRIME, x=X)
    print(f"lifted      : runs in {lifted.model()}  "
          f"(band: {T * X} <= t' <= {T * X + X - 1})")

    # 3. Crash t' = 5 of the 6 processes mid-run -- five times the
    #    failures the source was designed for.
    inputs = [10, 20, 30, 40, 50, 60]
    crash_plan = CrashPlan.at_own_step({v: 4 + 3 * v for v in range(T_PRIME)})
    result = run_algorithm(lifted, inputs,
                           adversary=SeededRandomAdversary(7),
                           crash_plan=crash_plan,
                           max_steps=5_000_000)

    print(f"run         : {result.summary()}")

    # 4. Validate the task: every survivor decided, decisions are
    #    proposed values, and at most k = 2 distinct values were decided.
    verdict = KSetAgreementTask(T + 1).validate_run(inputs, result)
    print(f"task verdict: {verdict.explain()}")
    assert verdict.ok

    # 5. The calculus view: both models sit in the same equivalence
    #    class because floor(t/1) == floor(t'/x).
    from repro import equivalent
    assert equivalent(ASM(N, T, 1), ASM(N, T_PRIME, X))
    print(f"equivalence : {ASM(N, T, 1)} ~ {ASM(N, T_PRIME, X)}   "
          f"(floor(t/x) = {T} on both sides)")


if __name__ == "__main__":
    main()
