#!/usr/bin/env python3
"""The BG simulation and the 1-resilient consensus impossibility story.

The classic use of the BG simulation (paper Section 1.1): if consensus
were solvable 1-resiliently among ANY number n of processes, BG would
turn that algorithm into a wait-free 2-process consensus algorithm --
which FLP/LA/Herlihy rule out.  Hence no 1-resilient consensus exists.

This script shows the operational half of that argument:

1. the BG reduction at work on a task that IS 1-resiliently solvable
   (2-set agreement): 2 wait-free simulators solve it, one may crash;
2. the mechanism the impossibility hinges on: one crash inside a
   safe-agreement blocks it forever -- agreement cannot be both safe and
   live for the simulators, which is exactly what a hypothetical
   1-resilient consensus algorithm would contradict.

Run:  python examples/bg_reduction.py
"""

from repro import (CrashPlan, KSetAgreementTask, KSetReadWrite, bg_reduce,
                   run_algorithm)
from repro.agreement import SafeAgreementFactory
from repro.memory import ObjectStore
from repro.runtime import run_processes


def part1_bg_at_work() -> None:
    print("1. BG reduction: 5-process 1-resilient 2-set agreement")
    print("   simulated wait-free by 2 processes")
    src = KSetReadWrite(n=5, t=1, k=2)
    bg = bg_reduce(src)                      # ASM(2, 1, 1), wait-free
    print(f"   source {src.model()}  ->  target {bg.model()}")

    inputs = [100, 200]
    res = run_algorithm(bg, inputs)
    print(f"   no crash : {res.summary()}")
    assert KSetAgreementTask(2).validate_run(inputs, res).ok

    res = run_algorithm(bg, inputs,
                        crash_plan=CrashPlan.at_own_step({0: 9}))
    print(f"   one crash: {res.summary()}")
    verdict = KSetAgreementTask(2).validate_run(inputs, res)
    assert verdict.ok
    print("   the surviving simulator finishes alone: t-resilience has")
    print("   become wait-freedom, the BG slogan.")


def part2_the_obstruction() -> None:
    print()
    print("2. Why consensus can't ride the same reduction: the")
    print("   safe-agreement obstruction")
    factory = SafeAgreementFactory(2)
    store = ObjectStore()
    store.add_all(factory.shared_objects())

    def simulator(i):
        inst = factory.instance("critical")
        yield from inst.propose(i, f"view-of-q{i}")
        decided = yield from inst.decide(i)
        return decided

    res = run_processes({0: simulator(0), 1: simulator(1)}, store,
                        crash_plan=CrashPlan.at_own_step({0: 2}))
    print(f"   q0 crashes between its (v,1) write and stabilization:")
    print(f"   {res.summary()}")
    assert res.deadlocked and res.blocked_pids == {1}
    print("   q1 is blocked FOREVER -- safe agreement trades wait-freedom")
    print("   for safety.  A 1-resilient n-process consensus algorithm")
    print("   would let 2 wait-free simulators decide anyway (via BG),")
    print("   contradicting the 2-process consensus impossibility.")
    print("   Conclusion (paper Section 1.1): for every n, consensus is")
    print("   not 1-resiliently solvable in read/write memory.")


if __name__ == "__main__":
    part1_bg_at_work()
    part2_the_obstruction()
