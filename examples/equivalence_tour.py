#!/usr/bin/env python3
"""A tour of the floor(t/x) equivalence calculus (paper Section 5.4).

Prints the paper's worked partition for t' = 8, the multiplicative bands,
the "useless boost" phenomena, and the set-consensus solvability
frontier -- then spot-checks two classes by actually running the paper's
construction.

Run:  python examples/equivalence_tour.py
"""

from repro import (ASM, KSetAgreementTask, KSetReadWrite, equivalent,
                   kset_solvable, multiplicative_band, partition_table,
                   run_algorithm, simulate_with_xcons, useless_boost)
from repro.runtime import CrashPlan


def banner(text: str) -> None:
    print()
    print(text)
    print("-" * len(text))


def main() -> None:
    banner("The Section 5.4 worked example (t' = 8)")
    print(partition_table(12, 8))

    banner("Multiplicative bands: ASM(n, t', x) ~ ASM(n, t, 1)")
    for t in (1, 2, 3):
        for x in (2, 3):
            lo, hi = multiplicative_band(t, x)
            print(f"  t={t}, x={x}:  t' in [{lo}..{hi}]")

    banner("Increasing the consensus number can be useless")
    print("  ASM(n, 8, 5) -> ASM(n, 8, 8): boost x by 3 ...",
          "USELESS" if useless_boost(8, 5, 3) else "useful")
    print("  ASM(n, 8, 4) -> ASM(n, 8, 5): boost x by 1 ...",
          "USELESS" if useless_boost(8, 4, 1) else "useful")
    print("  (floor(8/5)=floor(8/8)=1, but floor(8/4)=2 != floor(8/5)=1)")

    banner("The paper's flagship example: ASM(n, t, t) ~ ASM(n, 1, 1)")
    for n, t in ((6, 3), (9, 5), (12, 8)):
        assert equivalent(ASM(n, t, t), ASM(n, 1, 1))
        print(f"  ASM({n}, {t}, {t}) ~ ASM({n}, 1, 1)  "
              f"-> consensus unsolvable in both "
              f"(index {t // t} >= 1)")

    banner("Solvability frontier: k-set agreement in ASM(9, t', x)")
    print("  t'\\x " + "".join(f"{x:>4}" for x in range(1, 5)))
    for t_prime in range(0, 7):
        cells = []
        for x in range(1, 5):
            k_min = next(k for k in range(1, 10)
                         if kset_solvable(ASM(9, t_prime, x), k))
            cells.append(f"{k_min:>4}")
        print(f"  {t_prime:>4} " + "".join(cells))
    print("  (cell = smallest solvable k; the paper: k > floor(t'/x))")

    banner("Spot-check two classes by execution")
    for x, index in ((2, 4), (4, 2)):
        k = index + 1
        src = KSetReadWrite(n=12, t=index, k=k)
        alg = simulate_with_xcons(src, t_prime=8, x=x)
        victims = {v: 3 + 2 * v for v in range(8)}
        res = run_algorithm(alg, list(range(12)),
                            crash_plan=CrashPlan.at_own_step(victims),
                            max_steps=20_000_000)
        verdict = KSetAgreementTask(k).validate_run(list(range(12)), res)
        assert verdict.ok, verdict.explain()
        print(f"  ASM(12, 8, {x}): {k}-set agreement solved under 8 "
              f"crashes ({res.steps} steps, "
              f"{len(res.decisions)} deciders)")


if __name__ == "__main__":
    main()
