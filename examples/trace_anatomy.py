#!/usr/bin/env python3
"""Anatomy of a BG simulation run, drawn as ASCII timelines.

Records full traces of (1) a plain k-set agreement run and (2) the same
algorithm under the Section 4 simulation, then renders one lane per
process so you can *see* the paper's machinery: the burst of agreement
traffic per simulated snapshot, the spin lanes of processes waiting on a
dead agreement, and the crash/decide markers.

Run:  python examples/trace_anatomy.py
"""

from repro.algorithms import KSetReadWrite, run_algorithm
from repro.analysis.timeline import lane_summary, render_timeline
from repro.core import simulate_with_xcons
from repro.runtime import CrashPlan, SeededRandomAdversary


def section(title: str) -> None:
    print()
    print("#", title)


def main() -> None:
    src = KSetReadWrite(n=4, t=1, k=2)

    section("1. The source algorithm, bare: ASM(4, 1, 1), one crash")
    res = run_algorithm(src, [4, 3, 2, 1],
                        adversary=SeededRandomAdversary(2),
                        crash_plan=CrashPlan.at_own_step({0: 2}),
                        record_trace=True)
    print(render_timeline(res.trace))
    print(f"-> {res.summary()}")

    section("2. The same task under the Section 4 simulation: "
            "ASM(4, 3, 2), three crashes")
    sim = simulate_with_xcons(src, t_prime=3, x=2)
    res = run_algorithm(sim, [4, 3, 2, 1],
                        adversary=SeededRandomAdversary(2),
                        crash_plan=CrashPlan.at_own_step(
                            {0: 6, 1: 11, 2: 16}),
                        record_trace=True)
    print(render_timeline(res.trace, width=76))
    print(f"-> {res.summary()}")
    print()
    print("what to look for: 't' bursts are the X_T&S owner elections,")
    print("'p' the XCONS subset scans, 'w'/'r' the X_SAFE_AG publishes")
    print("and reads; after each X the dead owners' obligations are")
    print("picked up by survivors; '.' lanes are threads waiting on")
    print("agreements (read-only, detectable).")

    section("3. Per-process op mix of the simulated run")
    mix = lane_summary(res.trace)
    for pid in sorted(mix):
        ops = ", ".join(f"{glyph}x{count}"
                        for glyph, count in sorted(mix[pid].items()))
        print(f"  q{pid}: {ops}")


if __name__ == "__main__":
    main()
