#!/usr/bin/env python3
"""Crash-adversary lab: measuring the blocking lemmas.

The quantitative heart of the paper is how simulator crashes translate
into blocked simulated processes:

* BG / Section 3 (safe-agreement):   tau crashes block <= tau * x
* Section 4 (x-safe-agreement):      tau crashes block <= floor(tau / x)

This script runs both machineries under targeted crash injection (victims
die INSIDE agreement proposes, the worst case) with measurement-mode
simulators that announce every simulated decision, then prints the
blocking certificates side by side.

Run:  python examples/crash_adversary_lab.py
"""

from repro.agreement import SafeAgreementFactory, XSafeAgreementFactory
from repro.algorithms import (GroupedKSetFromXCons, KSetReadWrite,
                              run_algorithm)
from repro.analysis import blocking_certificate
from repro.bg import CollectAllPolicy
from repro.core import SimulationAlgorithm
from repro.runtime import CrashPlan, CrashPoint, op_on


def section3_lab(n: int, x: int, tau: int) -> None:
    src = GroupedKSetFromXCons(n=n, x=x)
    sim = SimulationAlgorithm(
        src, n_simulators=n, resilience=tau,
        snap_agreement=SafeAgreementFactory(n),
        obj_agreement=SafeAgreementFactory(n, family_name="XSAFE_AG"),
        policy_class=CollectAllPolicy, label="lab3")
    plan = CrashPlan({v: CrashPoint(
        before_matching=op_on("XSAFE_AG", "write"), occurrence=2)
        for v in range(tau)})
    res = run_algorithm(sim, list(range(n)), crash_plan=plan,
                        max_steps=5_000_000)
    cert = blocking_certificate(res, n, n)
    bound = tau * x
    print(f"  Section 3, n={n}, x={x}, tau={tau}: "
          f"max_blocked={cert.max_blocked} <= tau*x={bound}  "
          f"[{'OK' if cert.lemma1_holds(x) else 'VIOLATED'}]")


def section4_lab(n: int, x: int, tau: int, t: int) -> None:
    src = KSetReadWrite(n=n, t=t, k=t + 1)
    factory = XSafeAgreementFactory(n, x)
    sim = SimulationAlgorithm(
        src, n_simulators=n, resilience=tau,
        snap_agreement=factory, obj_agreement=factory,
        policy_class=CollectAllPolicy, label="lab4")
    plan = CrashPlan({v: CrashPoint(
        before_matching=op_on("XSA_XCONS", "propose"))
        for v in range(tau)})
    res = run_algorithm(sim, list(range(n)), crash_plan=plan,
                        max_steps=5_000_000)
    cert = blocking_certificate(res, n, n)
    bound = tau // x
    print(f"  Section 4, n={n}, x={x}, tau={tau}: "
          f"max_blocked={cert.max_blocked} <= floor(tau/x)={bound}  "
          f"[{'OK' if cert.max_blocked <= bound else 'VIOLATED'}]")


def main() -> None:
    print("victims crash INSIDE agreement proposes (the adversary's")
    print("best move); measurement simulators never stop early.")
    print()
    print("BG-style accounting (crashes multiply INTO blocking):")
    section3_lab(n=6, x=2, tau=1)
    section3_lab(n=6, x=3, tau=1)
    section3_lab(n=6, x=2, tau=2)
    print()
    print("x-safe-agreement accounting (crashes DIVIDE into blocking):")
    section4_lab(n=6, x=2, tau=2, t=1)
    section4_lab(n=6, x=3, tau=3, t=1)
    section4_lab(n=6, x=2, tau=3, t=1)
    print()
    print("same crash budgets, opposite direction: that asymmetry IS the")
    print("multiplicative power of consensus numbers.")


if __name__ == "__main__":
    main()
