#!/usr/bin/env python3
"""Colored tasks: simulating renaming across models (paper Section 5.5).

Colorless tricks fail for renaming -- two simulators must never adopt the
same simulated name.  Section 5.5 adds a test&set allocation: a simulator
that obtains pj's decision competes on T&S[j]; the winner adopts pj's
name, losers resume simulating.

This script simulates wait-free strong renaming from test&set (an
ASM(8, 4, 2) algorithm) within ASM(5, 2, 3), under crashes, and verifies
the decided names stay pairwise distinct.

Run:  python examples/colored_renaming.py
"""

from repro import (CrashPlan, DistinctValuesTask, RenamingFromTAS,
                   SeededRandomAdversary, run_algorithm, simulate_colored)
from repro.core import colored_simulation_possible
from repro.model import ASM


def main() -> None:
    source = RenamingFromTAS(8, t=4)       # ASM(8, 4, 2)
    target = ASM(5, 2, 3)
    print(f"source: {source.name} in {source.model()}")
    print(f"target: {target}")
    print(f"side conditions (x'>1, floor(t/x)>=floor(t'/x'), "
          f"n>=max(n',(n'-t')+t)): "
          f"{colored_simulation_possible(source.model(), target)}")

    sim = simulate_colored(source, n_prime=5, t_prime=2, x_prime=3)

    print()
    print("runs (decided values are simulated NAMES and must be "
          "pairwise distinct):")
    task = DistinctValuesTask()
    scenarios = [
        ("no crashes", CrashPlan.none(), 3),
        ("one crash", CrashPlan.at_own_step({1: 7}), 5),
        ("two crashes", CrashPlan.at_own_step({0: 4, 3: 11}), 11),
    ]
    for label, plan, seed in scenarios:
        res = run_algorithm(sim, [None] * 5,
                            adversary=SeededRandomAdversary(seed),
                            crash_plan=plan, max_steps=5_000_000)
        verdict = task.validate_run([None] * 5, res,
                                    require_liveness=False)
        assert verdict.ok, verdict.explain()
        assert res.decided_pids == res.correct_pids
        names = {pid: v for pid, v in sorted(res.decisions.items())}
        print(f"  {label:<12} names={names}  steps={res.steps}")
    print()
    print("every correct simulator claimed a distinct name: the T&S")
    print("allocation plus the n >= (n'-t') + t head-room guarantee of")
    print("Section 5.5 at work.")


if __name__ == "__main__":
    main()
