#!/usr/bin/env python3
"""Failure detectors as computability boosters (paper Section 1.3).

Consensus is impossible in every ASM(n, t, x) with floor(t/x) >= 1 --
that is the paper's running example.  Enrich the model with the leader
oracle Omega and consensus becomes wait-free solvable; with Omega_x the
protocol funnels through consensus-number-x objects.  Crucially the
algorithms are *indulgent*: while the oracle misbehaves, progress may
stall but agreement never breaks.

Run:  python examples/omega_boosting.py
"""

from repro import (ConsensusTask, CrashPlan, OmegaConsensus,
                   OmegaXClusterConsensus, SeededRandomAdversary,
                   consensus_solvable, run_algorithm)
from repro.model import ASM


def main() -> None:
    n = 4
    print("bare models (the calculus):")
    for x in (1, 2, 3):
        model = ASM(n, n - 1, x)
        print(f"  consensus in {model}: "
              f"{'solvable' if consensus_solvable(model) else 'IMPOSSIBLE'}"
              f"  (floor(t/x) = {model.resilience_index})")

    print()
    print("the same models enriched with Omega / Omega_x "
          "(3 of 4 processes crash):")
    task = ConsensusTask()
    runs = [
        ("ASM(4,3,1) + Omega  ", OmegaConsensus(n, stabilize_after=0)),
        ("ASM(4,3,2) + Omega_2", OmegaXClusterConsensus(n, x=2)),
        ("ASM(4,3,3) + Omega_3", OmegaXClusterConsensus(n, x=3)),
    ]
    for label, algo in runs:
        plan = CrashPlan.at_own_step({0: 4, 1: 7, 2: 10})
        res = run_algorithm(algo, [40, 30, 20, 10], crash_plan=plan,
                            max_steps=4_000_000)
        verdict = task.validate_run([40, 30, 20, 10], res)
        assert verdict.ok, verdict.explain()
        print(f"  {label} -> decided {sorted(res.decided_values)} "
              f"in {res.steps} steps")

    print()
    print("indulgence: agreement survives an adversarial oracle; only")
    print("latency pays (stabilization point swept, seed fixed):")
    for stab in (0, 100, 250):
        algo = OmegaConsensus(n, stabilize_after=stab)
        res = run_algorithm(algo, [1, 2, 3, 4],
                            adversary=SeededRandomAdversary(11),
                            max_steps=4_000_000)
        verdict = task.validate_run([1, 2, 3, 4], res)
        assert verdict.ok
        print(f"  oracle unstable for {stab:>3} steps -> "
              f"decided {sorted(res.decided_values)} after {res.steps} "
              f"steps")
    print()
    print("this is the x = 1..3 face of Guerraoui-Kuznetsov: Omega_x is")
    print("exactly the information about failures that turns consensus-")
    print("number-x objects into stronger ones (paper Section 1.3).")


if __name__ == "__main__":
    main()
